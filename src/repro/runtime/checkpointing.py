"""Save/restore of distributed training state.

Long training runs (the paper's Eq. 2 normalizes to 300 B tokens — months
of wall time) must survive restarts, so the trainer's full state — every
shard's parameters, the optimizer moments, the loss scale, and the batch
counter — round-trips through a plain dict of arrays (and, via
:func:`save_trainer` / :func:`load_trainer`, an ``.npz`` file).

Restoring requires a trainer with the same model configuration and grid;
resuming then continues bit-for-bit where the saved run left off, which the
tests assert.  *Bit-for-bit* requires more than arrays: the state also
captures every dropout module's RNG bit-generator state and the loss
scaler's good-step counter — without them a resumed run replays different
dropout masks (or grows the loss scale at the wrong step) and silently
forks the trajectory.  The crash-recovery equivalence guarantee of
:mod:`repro.resilience` is built directly on this completeness.
"""

from __future__ import annotations

import json
from typing import Dict, List

import numpy as np

from ..nn import AdamW
from ..nn.modules import Dropout
from .engine import AxoNNTrainer
from .offload import BucketedOffloadAdamW
from .stage import PipelineStage

__all__ = ["trainer_state_dict", "load_trainer_state", "save_trainer",
           "load_trainer"]

_META_KEY = "__meta__"


def _dropout_modules(stage: PipelineStage) -> List[Dropout]:
    """All dropout modules of a stage, in deterministic traversal order."""
    return [m for layer in stage.layers for m in layer.modules()
            if isinstance(m, Dropout)]


def trainer_state_dict(trainer: AxoNNTrainer) -> Dict[str, np.ndarray]:
    """Flatten the trainer's full training state to named arrays."""
    state: Dict[str, np.ndarray] = {}
    for rank in sorted(trainer.stages):  # TP followers hold no stage
        stage = trainer.stages[rank]
        prefix = f"rank{rank}"
        for name, p in stage.named_parameters():
            state[f"{prefix}.param.{name}"] = p.data.copy()
        opt = trainer.optimizers[rank]
        if isinstance(opt, BucketedOffloadAdamW):
            state[f"{prefix}.opt.master"] = opt.host_master.copy()
            state[f"{prefix}.opt.exp_avg"] = opt.host_exp_avg.copy()
            state[f"{prefix}.opt.exp_avg_sq"] = opt.host_exp_avg_sq.copy()
            state[f"{prefix}.opt.steps"] = np.asarray(opt.steps)
        elif isinstance(opt, AdamW):
            for k, st in enumerate(opt.state):
                for key, arr in st.items():
                    state[f"{prefix}.opt.{k}.{key}"] = arr.copy()
            state[f"{prefix}.opt.steps"] = np.asarray(opt.steps)
        else:  # MixedPrecisionAdamW
            for k, (m, v) in enumerate(zip(opt.exp_avg, opt.exp_avg_sq)):
                state[f"{prefix}.opt.{k}.exp_avg"] = m.copy()
                state[f"{prefix}.opt.{k}.exp_avg_sq"] = v.copy()
            state[f"{prefix}.opt.steps"] = np.asarray(opt.steps)
    meta = {
        "batches_trained": trainer.batches_trained,
        "skipped_batches": trainer.skipped_batches,
        "loss_scale": trainer.scaler.scale,
        "loss_scale_good_steps": trainer.scaler.good_steps,
        "precision": trainer.precision,
        "g_inter": trainer.grid.g_inter,
        "g_data": trainer.grid.g_data,
        "g_intra": trainer.grid.g_intra,
        # Dropout RNG bit-generator states, per rank in traversal order.
        # PCG64 state dicts are plain ints, so they ride in the JSON meta.
        "rng_states": {
            f"rank{rank}": [m.rng.bit_generator.state
                            for m in _dropout_modules(trainer.stages[rank])]
            for rank in sorted(trainer.stages)
        },
    }
    state[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8).copy()
    return state


def load_trainer_state(trainer: AxoNNTrainer,
                       state: Dict[str, np.ndarray]) -> None:
    """Restore a state produced by :func:`trainer_state_dict`.

    The trainer must have the same grid shape and precision mode.
    """
    meta = json.loads(bytes(state[_META_KEY]).decode())
    saved_grid = (meta["g_inter"], meta["g_data"], meta.get("g_intra", 1))
    live_grid = (trainer.grid.g_inter, trainer.grid.g_data,
                 trainer.grid.g_intra)
    if saved_grid != live_grid:
        raise ValueError(
            f"grid mismatch: checkpoint is "
            f"{saved_grid[0]}x{saved_grid[1]}x{saved_grid[2]}, trainer is "
            f"{live_grid[0]}x{live_grid[1]}x{live_grid[2]}"
        )
    if meta["precision"] != trainer.precision:
        raise ValueError(
            f"precision mismatch: checkpoint is {meta['precision']!r}, "
            f"trainer is {trainer.precision!r}"
        )
    for rank in sorted(trainer.stages):
        stage = trainer.stages[rank]
        prefix = f"rank{rank}"
        for name, p in stage.named_parameters():
            key = f"{prefix}.param.{name}"
            if key not in state:
                raise KeyError(f"checkpoint missing {key}")
            p.data[...] = state[key]
        opt = trainer.optimizers[rank]
        if isinstance(opt, BucketedOffloadAdamW):
            opt.host_master[...] = state[f"{prefix}.opt.master"]
            opt.host_exp_avg[...] = state[f"{prefix}.opt.exp_avg"]
            opt.host_exp_avg_sq[...] = state[f"{prefix}.opt.exp_avg_sq"]
            opt.device_half[...] = opt.host_master.astype(np.float16)
            opt.steps = int(state[f"{prefix}.opt.steps"])
        elif isinstance(opt, AdamW):
            for k, st in enumerate(opt.state):
                for key in ("exp_avg", "exp_avg_sq", "momentum"):
                    full = f"{prefix}.opt.{k}.{key}"
                    if full in state:
                        st[key] = state[full].copy()
                    else:
                        # The optimizer allocates moments lazily on the first
                        # step, so a checkpoint taken before that has none —
                        # restoring it must drop moments accumulated since,
                        # or a rollback-and-replay silently double-trains.
                        st.pop(key, None)
            opt.steps = int(state[f"{prefix}.opt.steps"])
        else:  # MixedPrecisionAdamW
            for k in range(len(opt.params)):
                opt.exp_avg[k][...] = state[f"{prefix}.opt.{k}.exp_avg"]
                opt.exp_avg_sq[k][...] = \
                    state[f"{prefix}.opt.{k}.exp_avg_sq"]
            for p, h in zip(opt.params, opt.half_params):
                h[...] = p.data.astype(np.float16)
            opt.steps = int(state[f"{prefix}.opt.steps"])
    trainer.batches_trained = meta["batches_trained"]
    trainer.skipped_batches = meta["skipped_batches"]
    trainer.scaler.scale = meta["loss_scale"]
    trainer.scaler.good_steps = meta.get("loss_scale_good_steps", 0)
    rng_states = meta.get("rng_states")
    if rng_states is not None:
        for rank in sorted(trainer.stages):
            drops = _dropout_modules(trainer.stages[rank])
            saved = rng_states.get(f"rank{rank}", [])
            if len(saved) != len(drops):
                raise ValueError(
                    f"rank {rank}: checkpoint has {len(saved)} dropout RNG "
                    f"states, model has {len(drops)} dropout modules")
            for m, st in zip(drops, saved):
                m.rng.bit_generator.state = st


def save_trainer(trainer: AxoNNTrainer, path: str) -> None:
    """Write the trainer state to a compressed ``.npz`` file."""
    np.savez_compressed(path, **trainer_state_dict(trainer))


def load_trainer(trainer: AxoNNTrainer, path: str) -> None:
    """Restore a trainer from :func:`save_trainer` output."""
    with np.load(path) as archive:
        load_trainer_state(trainer, dict(archive))
