"""AxoNN's hybrid training algorithm with real numerics.

This module is a line-by-line functional implementation of the paper's
Algorithm 1 (``TRAIN`` / ``DATA_PARALLEL_STEP``) and Algorithm 2
(``INTER_LAYER_PARALLEL_STEP``) on the cooperative rank transport:

* each rank ``g^{i,j}`` of the ``G_inter x G_data`` grid runs
  :meth:`AxoNNTrainer._rank_program` — the message-driven scheduler that
  starts a forward or backward pass depending on *which neighbour a message
  arrived from* (Algorithm 2 lines 13/21);
* the warm-up phase injects ``pipeline_limit`` microbatches (lines 3-9;
  ``pipeline_limit = G_inter`` as fixed in Section IV-A);
* the first stage injects a fresh microbatch after each completed backward
  pass, keeping the in-flight count constant in the steady state
  (lines 23-26);
* after the inter-layer phase, gradients are all-reduced across each
  data-parallel column (Algorithm 1 line 13) and the optimizer runs.

The loss is pre-divided by the total number of microbatches in the *batch*
(Section IV-B), so the summed all-reduce yields exactly the full-batch mean
gradient — the property the serial-equivalence tests (paper Fig. 10)
verify.

Training modes
--------------
``precision="fp32"`` (default) — fp32 gradients, AdamW per rank; bitwise
comparable to the serial reference.

``precision="mixed"`` — the paper's production configuration
(Sections II-A, IV-B, V-B):

* the loss is multiplied by the loss scale before backward;
* gradients are cast to fp16 and the data-parallel all-reduce *sums in
  half precision* (why the paper pre-divides the loss);
* overflow is detected per rank and OR-reduced globally so every rank
  skips (and backs the scale off) in lockstep;
* with ``offload=True`` the optimizer is the bucketed CPU-offload AdamW of
  Section V-B, streamed in ``bucket_size`` buckets with the all-reduce
  logically chunked by the coarsening factor ``k`` (Section V-C).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple, Union

import numpy as np

from ..analysis.protocol import TraceRecorder
from ..nn import AdamW, GPTConfig, LossScaler
from ..obs import RuntimeTracer
from ..perf.counters import counters as _perf_counters
from .grid import RankGrid
from .offload import BucketedOffloadAdamW
from .rankprog import TAG_BWD, TAG_FWD, inter_layer_step
from .stage import PipelineStage
from .tp import TensorParallelStage, TPComm, tp_follower_step
from .transport import RankTransport

__all__ = ["AxoNNTrainer", "TrainReport"]

BACKENDS = ("cooperative", "process")


class TrainReport:
    """Per-batch outcome: mean loss and traffic statistics."""

    def __init__(self, loss: float, messages: int, microbatches: int,
                 applied: bool = True, loss_scale: float = 1.0,
                 allreduce_chunks: int = 1):
        self.loss = loss
        #: point-to-point messages exchanged in the inter-layer phase
        self.messages = messages
        self.microbatches = microbatches
        #: False when a mixed-precision overflow skipped the optimizer step
        self.applied = applied
        #: loss scale in effect during the batch
        self.loss_scale = loss_scale
        #: number of chunks the gradient all-reduce was issued in
        self.allreduce_chunks = allreduce_chunks

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TrainReport loss={self.loss:.4f} msgs={self.messages} "
                f"applied={self.applied}>")


class AxoNNTrainer:
    """Hybrid (inter-layer x data) parallel trainer on the rank transport."""

    def __init__(self, cfg: GPTConfig, g_inter: int, g_data: int,
                 microbatch_size: int, g_intra: int = 1, lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999),
                 weight_decay: float = 0.01,
                 pipeline_limit: Optional[int] = None,
                 checkpoint_activations: bool = False,
                 precision: str = "fp32",
                 offload: bool = False,
                 bucket_size: int = 4096,
                 coarsening_k: int = 4,
                 loss_scaler: Optional[LossScaler] = None,
                 recorder: Optional[TraceRecorder] = None,
                 tracer: Optional[RuntimeTracer] = None,
                 backend: str = "cooperative",
                 backend_options: Optional[Dict[str, object]] = None):
        if microbatch_size < 1:
            raise ValueError("microbatch_size must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        if precision not in ("fp32", "mixed"):
            raise ValueError(f"precision must be 'fp32' or 'mixed', "
                             f"got {precision!r}")
        if offload and precision != "mixed":
            raise ValueError("the CPU-offload optimizer requires "
                             "precision='mixed' (fp16 device gradients)")
        if coarsening_k < 1:
            raise ValueError("coarsening_k must be >= 1")
        if g_intra > 1 and checkpoint_activations:
            raise ValueError(
                "checkpoint_activations is not supported with g_intra > 1")
        self.cfg = cfg
        self.grid = RankGrid(g_inter, g_data, g_intra)
        self.microbatch_size = microbatch_size
        self.precision = precision
        self.offload = offload
        self.bucket_size = bucket_size
        self.coarsening_k = coarsening_k
        self.checkpoint_activations = checkpoint_activations
        self._opt_hparams = dict(lr=lr, betas=betas,
                                 weight_decay=weight_decay)
        # Section IV-A: pipeline_limit is fixed to G_inter.
        self.pipeline_limit = g_inter if pipeline_limit is None \
            else pipeline_limit
        if self.pipeline_limit < 1:
            raise ValueError("pipeline_limit must be >= 1")
        #: shared, globally-synchronized loss scale (mixed precision only)
        self.scaler = loss_scaler or (
            LossScaler() if precision == "mixed"
            else LossScaler(init_scale=1.0, dynamic=False))

        #: rank -> its network shard (stage replicas share weights by
        #: construction: build_layer is deterministic per slot).
        self.stages: Dict[int, PipelineStage] = {}
        self.optimizers: Dict[int, Union[AdamW, BucketedOffloadAdamW]] = {}
        for rank in range(self.grid.world_size):
            self._build_rank(rank)
        self.batches_trained = 0
        self.skipped_batches = 0
        #: optional communication trace for the protocol verifier; the
        #: point-to-point phase and the data-parallel collectives of every
        #: batch are appended to the same trace
        self.recorder = recorder
        #: optional observability tracer (:mod:`repro.obs`); span names
        #: mirror the performance model's event names (``fwd{mb}``,
        #: ``bwd{mb}``, ``allreduce``, ``allreduce-chunk{c}``,
        #: ``optimizer``) so traces from both substrates line up
        self.tracer = tracer
        #: per-stage reusable buffers for the data-parallel phase, allocated
        #: on first use (the parameter layout is fixed at construction; the
        #: cache is only invalidated when a rank is respawned after a fault)
        self._dp_buffers: Dict[int, _ColumnBuffers] = {}
        #: optional factory for the per-batch transport; the resilience
        #: layer installs one that injects faults (see repro.resilience)
        self.transport_factory: Optional[Callable[[], RankTransport]] = None
        #: which execution backend runs the inter-layer phase:
        #: ``"cooperative"`` — every rank program swept in this process
        #: (deterministic, single core); ``"process"`` — one OS process
        #: per rank over shared-memory rings (:mod:`repro.runtime.parallel`),
        #: numerically bit-identical, actually parallel on multi-core.
        self.backend = backend
        self._backend_options = dict(backend_options or {})
        self._process_backend = None

    @property
    def process_backend(self):
        """The lazily-constructed process pool bridge (process backend)."""
        if self._process_backend is None:
            from .parallel import ProcessBackend
            self._process_backend = ProcessBackend(
                self, **self._backend_options)
        return self._process_backend

    def close(self) -> None:
        """Shut down backend resources (worker processes, shared memory).
        A no-op for the cooperative backend; safe to call repeatedly."""
        if self._process_backend is not None:
            self._process_backend.close()
            self._process_backend = None

    def _build_rank(self, rank: int) -> None:
        """(Re)construct one rank's stage and optimizer from scratch.

        Used at construction for every rank, and by the recovery
        coordinator to respawn a crashed rank before restoring its state
        from the latest snapshot.  Any cached data-parallel buffers
        referencing the old parameter objects must be invalidated by the
        caller (:meth:`invalidate_buffers`).
        """
        i, _j, t = self.grid.coord3_of(rank)
        if t != 0:
            # Tensor-parallel followers hold no stage or optimizer: the
            # group lead owns the full sharded stage (see runtime.tp);
            # followers are pure protocol participants.
            return
        if self.grid.g_intra > 1:
            stage: PipelineStage = TensorParallelStage(
                self.cfg, i, self.grid.g_inter, self.grid.g_intra)
        else:
            stage = PipelineStage(
                self.cfg, i, self.grid.g_inter,
                checkpoint_activations=self.checkpoint_activations)
        self.stages[rank] = stage
        hp = self._opt_hparams
        if self.offload:
            # Per-rank scaler objects would desync on dynamic updates;
            # every optimizer shares the trainer's scaler.
            self.optimizers[rank] = BucketedOffloadAdamW(
                stage.parameters(), bucket_size=self.bucket_size,
                scaler=_FrozenScaleView(self), **hp)
        elif self.precision == "mixed":
            from ..nn import MixedPrecisionAdamW
            self.optimizers[rank] = MixedPrecisionAdamW(
                stage.parameters(), scaler=_FrozenScaleView(self), **hp)
        else:
            self.optimizers[rank] = AdamW(stage.parameters(), **hp)

    def invalidate_buffers(self) -> None:
        """Drop cached data-parallel buffers (call after respawning a rank:
        the cached views alias the *old* stage's parameter objects)."""
        self._dp_buffers.clear()

    # -- shard bookkeeping -------------------------------------------------
    def _split_batch(self, x: np.ndarray, y: np.ndarray):
        """Divide the batch into G_data shards, each into microbatches.

        Returns (per-group microbatch lists of (x, y), total microbatches).
        """
        b = x.shape[0]
        g_data = self.grid.g_data
        if b % g_data != 0:
            raise ValueError(f"batch size {b} not divisible by "
                             f"G_data={g_data}")
        shard = b // g_data
        if shard % self.microbatch_size != 0:
            raise ValueError(
                f"batch shard {shard} not divisible by microbatch size "
                f"{self.microbatch_size}"
            )
        per_shard = shard // self.microbatch_size
        groups = []
        for j in range(g_data):
            xs = x[j * shard:(j + 1) * shard]
            ys = y[j * shard:(j + 1) * shard]
            mbs = [
                (xs[k * self.microbatch_size:(k + 1) * self.microbatch_size],
                 ys[k * self.microbatch_size:(k + 1) * self.microbatch_size])
                for k in range(per_shard)
            ]
            groups.append(mbs)
        return groups, per_shard * g_data

    # -- Algorithm 2 ------------------------------------------------------------
    def _rank_program(self, rank: int, transport: RankTransport,
                      microbatches: List[Tuple[np.ndarray, np.ndarray]],
                      total_microbatches: int) -> Generator:
        """INTER_LAYER_PARALLEL_STEP for GPU ``g^{i,j}``.

        A thin binding of the backend-agnostic generator in
        :mod:`repro.runtime.rankprog` to this trainer's stage and the
        cooperative transport — the process backend binds the *same*
        generator to its shared-memory endpoints.
        """
        scale = self.scaler.scale if self.precision == "mixed" else 1.0
        stage = self.stages[rank]
        send = lambda dst, tag, mb, data: transport.send(rank, dst, tag, mb,
                                                         data)
        tp = None
        if self.grid.g_intra > 1:
            tp = TPComm(rank, self.grid, send,
                        wgt_payload=stage.wgt_payload,
                        grad_payload=stage.grad_payload,
                        record=self._tp_record)
        return inter_layer_step(
            rank, self.grid, stage, send,
            microbatches, total_microbatches, self.pipeline_limit,
            loss_scale=scale, tracer=self.tracer, tp=tp)

    def _tp_follower_program(self, rank: int,
                             transport: RankTransport,
                             total_microbatches: int) -> Generator:
        """Reactive rank program for a tensor-parallel follower."""
        send = lambda dst, tag, mb, data: transport.send(rank, dst, tag, mb,
                                                         data)
        comm = TPComm(rank, self.grid, send, record=self._tp_record)
        return tp_follower_step(rank, self.grid, comm, total_microbatches)

    def _tp_record(self, rank: int, op: str, key: tuple,
                   nbytes: int) -> None:
        """Collective sink for the ``tp`` stream: protocol trace, perf
        counters (``tp.*`` namespace, shared with
        :class:`~repro.baselines.intra_layer.CommCounter`) and obs spans."""
        if self.recorder is not None:
            self.recorder.record_collective(rank, op, key=key)
        if _perf_counters.enabled:
            kind = "allgather" if op == "tp_allgather" else "reduce_scatter"
            _perf_counters.bump(f"tp.{kind}")
            _perf_counters.bump(f"tp.{kind}_bytes", nbytes)
        if self.tracer is not None and self.tracer.enabled:
            now = self.tracer.now()
            self.tracer.record(rank, "tp", op, now, now, category="tp",
                               nbytes=nbytes, group=str(key[0]),
                               direction=key[1], microbatch=key[2])

    # -- Algorithm 1, data-parallel phase --------------------------------------
    def _allreduce_fp32(self) -> None:
        """All-reduce (sum) fp32 parameter gradients across each column.

        The reduced gradient is written back *into each replica's own
        gradient buffer* — one fresh array per parameter group for the sum
        itself, no per-replica copies.
        """
        if self.grid.g_data == 1:
            return
        tracer = self.tracer if (self.tracer is not None
                                 and self.tracer.enabled) else None
        for i in range(self.grid.g_inter):
            column = self.grid.data_parallel_ranks(i)
            param_lists = [self.stages[r].parameters() for r in column]
            col_bytes = sum(p.data.nbytes for p in param_lists[0])
            ar_start = tracer.now() if tracer is not None else 0.0
            if self.recorder is not None:
                # One collective per parameter slot, recorded per rank —
                # outside the numeric loop so recording stays off-hot-path.
                for slot in range(len(param_lists[0])):
                    for r in column:
                        self.recorder.record_collective(
                            r, "allreduce_fp32", key=(i, slot))
            for params in zip(*param_lists):
                grads = [p.grad for p in params if p.grad is not None]
                if not grads:
                    continue
                total = np.sum(grads, axis=0)
                for p in params:
                    if p.grad is None:
                        p.grad = total.copy()
                    else:
                        np.copyto(p.grad, total)
            if tracer is not None:
                ar_end = tracer.now()
                for r in column:
                    tracer.record(r, "aux", "allreduce", ar_start, ar_end,
                                  category="allreduce", nbytes=col_bytes,
                                  ranks=len(column))

    def _column_buffers(self, i: int) -> "_ColumnBuffers":
        """The (lazily allocated) reusable fp16 buffers of column ``i``."""
        buf = self._dp_buffers.get(i)
        if buf is None:
            buf = _ColumnBuffers(
                [self.stages[r] for r in self.grid.data_parallel_ranks(i)])
            self._dp_buffers[i] = buf
        return buf

    def _fill_column_half_grads(self, i: int) -> "_ColumnBuffers":
        """Cast every replica's gradients into its cached fp16 flat row."""
        buf = self._column_buffers(i)
        # Values beyond the fp16 range legitimately become inf here — that
        # is precisely what the downstream overflow check detects.
        with np.errstate(over="ignore"):
            for views in buf.param_views:
                for dst, p in views:
                    if p.grad is None:
                        dst[...] = np.float16(0)
                    else:
                        np.copyto(dst, p.grad, casting="unsafe")
        return buf

    def _column_half_grads(self, i: int) -> List[np.ndarray]:
        """fp16 gradient flats of stage ``i``'s column, one per replica.

        The rows are views into the cached column buffer: valid until the
        next fill, which is all the callers need.
        """
        buf = self._fill_column_half_grads(i)
        return [buf.stacked[r] for r in range(buf.stacked.shape[0])]

    def _allreduce_fp16_chunked(self, i: int) -> Tuple[np.ndarray, int]:
        """Sum a column's fp16 gradients in k*bucket_size chunks, as the
        overlapped all-reduce of Section V-C issues them.

        Half-precision accumulation is faithful to NCCL's fp16 ring — the
        reason the paper pre-divides the loss to avoid overflow.  The sum
        is one vectorized fp16 reduction per chunk over the stacked replica
        rows (bit-identical to sequential replica-order accumulation; the
        tests assert this), written into the cached ``total`` buffer.
        Returns the (fp16) reduced flat and the number of chunks issued.
        """
        buf = self._fill_column_half_grads(i)
        stacked, total = buf.stacked, buf.total
        chunk = max(1, self.coarsening_k * self.bucket_size)
        n_chunks = 0
        tracer = self.tracer if (self.tracer is not None
                                 and self.tracer.enabled) else None
        column = self.grid.data_parallel_ranks(i)
        # Overflowing values legitimately produce inf/nan here (that is what
        # the overflow check downstream detects) — silence the warning.
        with np.errstate(invalid="ignore", over="ignore"):
            for start in range(0, buf.numel, chunk):
                end = min(start + chunk, buf.numel)
                t0 = tracer.now() if tracer is not None else 0.0
                np.sum(stacked[:, start:end], axis=0, dtype=np.float16,
                       out=total[start:end])
                if tracer is not None:
                    t1 = tracer.now()
                    for r in column:
                        tracer.record(r, "aux", f"allreduce-chunk{n_chunks}",
                                      t0, t1, category="allreduce",
                                      nbytes=2 * (end - start),
                                      chunk=n_chunks, ranks=len(column))
                n_chunks += 1
        if self.recorder is not None:
            for c in range(n_chunks):
                for r in self.grid.data_parallel_ranks(i):
                    self.recorder.record_collective(
                        r, "allreduce_fp16", key=(i, c))
        return total, n_chunks

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> TrainReport:
        """One full DATA_PARALLEL_STEP + optimizer step; returns the mean
        batch loss (exactly comparable to a serial full-batch loss)."""
        groups, total_mb = self._split_batch(x, y)
        for stage in self.stages.values():
            stage.microbatch_losses.clear()
        for opt in self.optimizers.values():
            opt.zero_grad()

        if self.backend == "process":
            messages = self.process_backend.run_batch(groups, total_mb)
        else:
            if self.transport_factory is not None:
                transport = self.transport_factory()
            else:
                transport = RankTransport(self.grid.world_size,
                                          recorder=self.recorder,
                                          tracer=self.tracer)
            programs = {}
            for rank in range(self.grid.world_size):
                _i, j, t = self.grid.coord3_of(rank)
                if t == 0:
                    programs[rank] = self._rank_program(rank, transport,
                                                        groups[j], total_mb)
                else:
                    programs[rank] = self._tp_follower_program(
                        rank, transport, len(groups[j]))
            transport.run(programs)
            messages = transport.messages_sent

            # Sanity: no microbatch left in flight anywhere.  (The process
            # backend performs the same check worker-side.)
            for rank, stage in self.stages.items():
                if stage.inflight_microbatches:
                    raise RuntimeError(
                        f"rank {rank} finished with "
                        f"{stage.inflight_microbatches} microbatches in "
                        f"flight"
                    )

        scale = self.scaler.scale
        applied = True
        chunks = 1
        if self.precision == "mixed":
            applied, chunks = self._mixed_data_parallel_and_optimizer()
        else:
            self._allreduce_fp32()
            for rank, opt in self.optimizers.items():
                self._traced_step(rank, opt.step)
        self.batches_trained += 1
        if not applied:
            self.skipped_batches += 1

        losses = [
            loss
            for rank, stage in self.stages.items()
            if self.grid.is_last_stage(rank)
            for loss in stage.microbatch_losses.values()
        ]
        mean_loss = float(np.mean(losses))
        return TrainReport(mean_loss, messages, total_mb,
                           applied=applied, loss_scale=scale,
                           allreduce_chunks=chunks)

    def _traced_step(self, rank: int, step, *args) -> None:
        """Run an optimizer step, recording it as an ``optimizer`` span."""
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span(rank, "compute", "optimizer",
                                  category="optimizer"):
                step(*args)
        else:
            step(*args)

    def _mixed_data_parallel_and_optimizer(self) -> Tuple[bool, int]:
        """fp16 all-reduce + globally synchronized overflow skip + step."""
        reduced: Dict[int, np.ndarray] = {}
        chunks = 1
        overflow = False
        for i in range(self.grid.g_inter):
            flat, chunks = self._allreduce_fp16_chunked(i)
            reduced[i] = flat
            if not np.isfinite(flat).all():  # isfinite works on fp16 directly
                overflow = True
        # The overflow flag is OR-reduced across the grid (the real
        # implementation piggybacks this on a tiny collective): all ranks
        # skip or apply in lockstep.
        if overflow:
            self.scaler.update(found_overflow=True)
            return False, chunks
        for rank in sorted(self.optimizers):
            i, _j = self.grid.coord_of(rank)
            opt = self.optimizers[rank]
            if isinstance(opt, BucketedOffloadAdamW):
                self._traced_step(rank, opt.step, reduced[i])
            else:
                # Per-parameter views of the reduced flat, precomputed once
                # per column (the optimizer copies before descaling, so the
                # column's replicas can all read the same views).
                self._traced_step(rank, opt.step, self._dp_buffers[i].halves)
        self.scaler.update(found_overflow=False)
        return True, chunks

    # -- diagnostics ---------------------------------------------------------
    def parameters_of(self, i: int, j: int = 0):
        """Parameters of stage ``i`` in data group ``j``."""
        return self.stages[self.grid.rank_of(i, j)].parameters()

    def gather_state(self, j: int = 0) -> Dict[str, np.ndarray]:
        """Full-model state dict reassembled from pipeline ``j``'s shards.

        Tensor-parallel stages are reassembled into *dense* parameter
        names/arrays, so states gathered at different ``g_intra`` are
        directly comparable (the bit-identity acceptance check)."""
        state: Dict[str, np.ndarray] = {}
        for i in range(self.grid.g_inter):
            stage = self.stages[self.grid.rank_of(i, j)]
            if isinstance(stage, TensorParallelStage):
                state.update(stage.dense_state())
            else:
                for name, p in stage.named_parameters():
                    state[name] = p.data.copy()
        return state


class _ColumnBuffers:
    """Reusable fp16 buffers for one stage's data-parallel column.

    Allocated once, keyed by the column's (fixed) parameter layout, and
    reused every batch so the mixed-precision data-parallel phase performs
    no per-batch allocation:

    * ``stacked`` — (replicas, numel) fp16; row ``j`` holds replica ``j``'s
      flattened gradients (written in place by ``np.copyto`` each batch);
    * ``total`` — (numel,) fp16 output of the chunked all-reduce;
    * ``param_views`` — per replica, (destination-view, parameter) pairs
      mapping each parameter into its slice of the row;
    * ``halves`` — per-parameter shaped views of ``total``, the unflattened
      gradient list handed to the optimizer.
    """

    __slots__ = ("stacked", "total", "param_views", "halves", "numel")

    def __init__(self, stages: List["PipelineStage"]):
        params0 = stages[0].parameters()
        self.numel = sum(p.size for p in params0)
        self.stacked = np.empty((len(stages), self.numel), dtype=np.float16)
        self.total = np.empty(self.numel, dtype=np.float16)
        self.param_views: List[List[Tuple[np.ndarray, "Tensor"]]] = []
        for row, stage in enumerate(stages):
            offset = 0
            views = []
            for p in stage.parameters():
                views.append(
                    (self.stacked[row, offset:offset + p.size]
                     .reshape(p.data.shape), p))
                offset += p.size
            if offset != self.numel:
                raise RuntimeError(
                    "data-parallel replicas disagree on parameter layout")
            self.param_views.append(views)
        self.halves: List[np.ndarray] = []
        offset = 0
        for p in params0:
            self.halves.append(
                self.total[offset:offset + p.size].reshape(p.data.shape))
            offset += p.size


class _FrozenScaleView(LossScaler):
    """A per-optimizer view of the trainer's shared scaler whose ``update``
    is a no-op — scale transitions are driven once per batch by the trainer
    (after the global overflow OR-reduce), never by individual ranks."""

    def __init__(self, trainer: AxoNNTrainer):
        super().__init__(init_scale=1.0, dynamic=False)
        self._trainer = trainer

    @property
    def scale(self) -> float:  # type: ignore[override]
        return self._trainer.scaler.scale

    @scale.setter
    def scale(self, value: float) -> None:  # pragma: no cover
        pass

    def update(self, found_overflow: bool) -> None:
        pass
