"""A pipeline stage: one rank's contiguous shard of the network.

Implements the ``nn_shard`` object of Algorithms 1-2: the stage owns its
layer modules, runs forward passes keeping the boundary tensors alive per
in-flight microbatch, and runs backward passes that (a) accumulate parameter
gradients and (b) produce the gradient w.r.t. the stage input to send
upstream.  The final stage additionally computes the loss (pre-divided by
the total number of microbatches in the batch — the paper's overflow guard
that also makes the accumulated gradient an exact full-batch mean).

Activation checkpointing (Section V-A) is applied *inside* the stage via
:class:`~repro.nn.checkpoint.CheckpointedStack` with the ``ac = sqrt(N)``
interval rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import (Block, GPTConfig, GPTEmbedding, LayerKVCache, Module,
                  Tensor, build_layer, no_grad, num_layer_slots)
from ..nn.checkpoint import CheckpointedStack, optimal_checkpoint_interval

__all__ = ["partition_layers", "PipelineStage", "InferenceStage"]


def partition_layers(n_slots: int, g_inter: int) -> List[Tuple[int, int]]:
    """Split ``n_slots`` layer slots into ``g_inter`` contiguous [start, end)
    ranges, sizes differing by at most one (larger shards first)."""
    if g_inter < 1:
        raise ValueError("g_inter must be >= 1")
    if n_slots < g_inter:
        raise ValueError(
            f"cannot split {n_slots} layers across {g_inter} stages"
        )
    base, extra = divmod(n_slots, g_inter)
    ranges = []
    start = 0
    for i in range(g_inter):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class PipelineStage:
    """One rank's ``nn_shard``."""

    def __init__(self, cfg: GPTConfig, stage_index: int, g_inter: int,
                 checkpoint_activations: bool = False):
        self.cfg = cfg
        self.stage_index = stage_index
        self.g_inter = g_inter
        n_slots = num_layer_slots(cfg)
        ranges = partition_layers(n_slots, g_inter)
        self.slot_range = ranges[stage_index]
        self.layers: List[Module] = [
            build_layer(cfg, slot) for slot in range(*self.slot_range)
        ]
        self.is_first = stage_index == 0
        self.is_last = stage_index == g_inter - 1

        # Checkpointing applies to the transformer blocks of the stage (the
        # embedding/head are cheap); interval from the paper's sqrt rule.
        self._blocks_start = 1 if self.is_first else 0
        self._blocks_end = len(self.layers) - (1 if self.is_last else 0)
        blocks = self.layers[self._blocks_start:self._blocks_end]
        if checkpoint_activations and blocks:
            interval = optimal_checkpoint_interval(cfg.n_layer, len(blocks))
            self._block_runner: Optional[CheckpointedStack] = \
                CheckpointedStack(blocks, interval)
        else:
            self._block_runner = None

        #: per-microbatch saved boundary tensors: mb -> (input, output)
        self._inflight: Dict[int, Tuple[Optional[Tensor], Tensor]] = {}
        #: per-microbatch loss value (last stage only)
        self.microbatch_losses: Dict[int, float] = {}

    # -- introspection -----------------------------------------------------
    def parameters(self):
        return [p for layer in self.layers for p in layer.parameters()]

    def named_parameters(self):
        for li, layer in enumerate(self.layers):
            slot = self.slot_range[0] + li
            for name, p in layer.named_parameters():
                yield f"slot{slot}.{name}", p

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    @property
    def inflight_microbatches(self) -> int:
        return len(self._inflight)

    # -- execution ------------------------------------------------------------
    def _run_layers(self, x):
        # leading non-block layer (embedding)
        for layer in self.layers[:self._blocks_start]:
            x = layer(x)
        if self._block_runner is not None:
            x = self._block_runner(x)
        else:
            for layer in self.layers[self._blocks_start:self._blocks_end]:
                x = layer(x)
        for layer in self.layers[self._blocks_end:]:
            if self.is_last:
                break  # the head is applied inside forward() with targets
            x = layer(x)
        return x

    def forward(self, microbatch: int, data: np.ndarray,
                targets: Optional[np.ndarray] = None,
                loss_divisor: float = 1.0,
                loss_scale: float = 1.0) -> np.ndarray:
        """Run this stage's forward pass for one microbatch.

        * first stage: ``data`` is the integer token array;
        * other stages: ``data`` is the boundary activation from upstream.
        * last stage: requires ``targets``; computes the (pre-divided) loss,
          records its value, and returns nothing to forward further.

        Returns the boundary activation to send downstream (or the loss
        value array for the last stage, kept for symmetric bookkeeping).
        """
        if microbatch in self._inflight:
            raise RuntimeError(
                f"microbatch {microbatch} already in flight on stage "
                f"{self.stage_index}"
            )
        if self.is_first:
            x_in: Optional[Tensor] = None
            x = np.asarray(data)
        else:
            x_in = Tensor(np.asarray(data, dtype=np.float32),
                          requires_grad=True)
            x = x_in

        out = self._run_layers(x)

        if self.is_last:
            if targets is None:
                raise ValueError("last stage forward requires targets")
            head = self.layers[-1]
            # Pre-divide by the total microbatch count (Section IV-B) and
            # apply the mixed-precision loss scale (Section II-A).
            loss = head.loss(out, targets) * (loss_scale / loss_divisor)
            self.microbatch_losses[microbatch] = \
                loss.item() * loss_divisor / loss_scale
            self._inflight[microbatch] = (x_in, loss)
            return loss.data
        self._inflight[microbatch] = (x_in, out)
        return out.data

    def backward(self, microbatch: int,
                 grad: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """Run this stage's backward pass for one microbatch.

        ``grad`` is the gradient w.r.t. this stage's output (None for the
        last stage, whose root is the scalar loss — Algorithm 2's
        ``BACKWARD(1)``).  Returns the gradient w.r.t. the stage input, or
        None for the first stage.
        """
        if microbatch not in self._inflight:
            raise RuntimeError(
                f"backward for unknown microbatch {microbatch} on stage "
                f"{self.stage_index}"
            )
        x_in, out = self._inflight.pop(microbatch)
        if self.is_last:
            out.backward()  # scalar loss
        else:
            if grad is None:
                raise ValueError("non-last stage backward requires a gradient")
            out.backward(np.asarray(grad, dtype=np.float32))
        if x_in is None:
            return None
        g = x_in.grad
        x_in.zero_grad()
        return g


class InferenceStage:
    """Forward-only pipeline shard for serving (:mod:`repro.serve`).

    Shares :func:`partition_layers`/:func:`build_layer` with
    :class:`PipelineStage`, so rank ``i`` holds exactly the weights the
    training stage would — the serial/pipeline numerical-equivalence
    property carries over to inference verbatim.  Instead of autograd
    bookkeeping, each in-flight *request* owns per-block
    :class:`~repro.nn.LayerKVCache` buffers: a decode step feeds only the
    newest token's activation through the shard and attends over the cache.
    Layers run in eval mode (dropout off), matching ``model.eval()`` on the
    serial side.
    """

    def __init__(self, cfg: GPTConfig, stage_index: int, g_inter: int):
        self.cfg = cfg
        self.stage_index = stage_index
        self.g_inter = g_inter
        ranges = partition_layers(num_layer_slots(cfg), g_inter)
        self.slot_range = ranges[stage_index]
        self.layers: List[Module] = [
            build_layer(cfg, slot) for slot in range(*self.slot_range)
        ]
        for layer in self.layers:
            layer.eval()
        self.is_first = stage_index == 0
        self.is_last = stage_index == g_inter - 1
        #: request id -> {layer index -> LayerKVCache}
        self._caches: Dict[int, Dict[int, LayerKVCache]] = {}
        #: request id -> positions consumed so far (the position offset)
        self._pos: Dict[int, int] = {}

    # -- request lifecycle -------------------------------------------------
    @property
    def inflight_requests(self) -> int:
        return len(self._caches)

    def kv_bytes(self) -> int:
        """Current KV-cache footprint of all in-flight requests (full
        capacity; buffers are preallocated at admission)."""
        return sum(c.nbytes for caches in self._caches.values()
                   for c in caches.values())

    def start_request(self, rid: int, batch_size: int = 1) -> None:
        if rid in self._caches:
            raise RuntimeError(f"request {rid} already in flight on stage "
                               f"{self.stage_index}")
        self._caches[rid] = {
            li: LayerKVCache(self.cfg, batch_size)
            for li, layer in enumerate(self.layers)
            if isinstance(layer, Block)
        }
        self._pos[rid] = 0

    def finish_request(self, rid: int) -> None:
        self._caches.pop(rid)
        self._pos.pop(rid)

    # -- KV handoff (disaggregated prefill/decode) -------------------------
    def export_kv(self, rid: int
                  ) -> Tuple[int, Dict[int, Tuple[np.ndarray, np.ndarray]]]:
        """Snapshot request ``rid``'s filled KV rows for transfer.

        Returns ``(pos, blocks)`` where ``blocks`` maps *global* layer-slot
        indices to ``(k, v)`` arrays holding only the used prefix.  The
        global keys let a pool with a different pipeline depth re-shard the
        same layers: each importing stage picks out the slots it owns.
        """
        if rid not in self._caches:
            raise RuntimeError(f"request {rid} not started on stage "
                               f"{self.stage_index}")
        blocks = {
            self.slot_range[0] + li: (c.k[:, :, :c.length].copy(),
                                      c.v[:, :, :c.length].copy())
            for li, c in self._caches[rid].items()
        }
        return self._pos[rid], blocks

    def import_kv(self, rid: int, pos: int,
                  blocks: Dict[int, Tuple[np.ndarray, np.ndarray]]) -> None:
        """Admit request ``rid`` seeded from an :meth:`export_kv` snapshot.

        Only the slots this stage owns are consumed; ``blocks`` may carry
        the whole network's caches (the ingest message fans past every
        stage of the importing pool).
        """
        self.start_request(rid)
        for li, cache in self._caches[rid].items():
            k, v = blocks[self.slot_range[0] + li]
            cache.extend(k, v)
        self._pos[rid] = pos

    # -- execution ---------------------------------------------------------
    def forward(self, rid: int, data: np.ndarray) -> np.ndarray:
        """One forward-only pass for request ``rid``.

        * first stage: ``data`` is an integer token array (b, t) — the
          whole prompt at prefill, the single newest token at decode;
        * other stages: ``data`` is the boundary activation from upstream;
        * last stage: returns logits (b, t, vocab).
        """
        if rid not in self._caches:
            raise RuntimeError(f"request {rid} not started on stage "
                               f"{self.stage_index}")
        caches = self._caches[rid]
        pos = self._pos[rid]
        t = np.asarray(data).shape[1]
        with no_grad():
            if self.is_first:
                x = np.asarray(data)
            else:
                x = Tensor(np.asarray(data, dtype=np.float32))
            for li, layer in enumerate(self.layers):
                if isinstance(layer, GPTEmbedding):
                    x = layer(x, pos_offset=pos)
                elif isinstance(layer, Block):
                    x = layer(x, cache=caches[li])
                else:  # GPTHead
                    x = layer(x)
        self._pos[rid] = pos + t
        return x.data
