"""Algorithm 2 as a standalone, backend-agnostic rank program.

``INTER_LAYER_PARALLEL_STEP`` used to live inside
:class:`~repro.runtime.engine.AxoNNTrainer` as a bound method, which tied
it to the cooperative scheduler: a worker process cannot pickle a bound
generator, and must not drag the whole trainer (optimizer state, every
other rank's stage) across a fork boundary either.  This module is the
extraction: a plain generator function over an explicit ``send`` callable
and a :class:`~repro.runtime.stage.PipelineStage`, so the cooperative
backend (:class:`~repro.runtime.transport.RankTransport`) and the
multiprocessing backend (:mod:`repro.runtime.parallel`) drive *the same
code* — the strongest possible guarantee that the two backends compute
the same schedule.

The generator yields :data:`~repro.runtime.transport.RECV` and is resumed
with :class:`~repro.runtime.transport.Packet` objects; it never touches a
transport beyond the injected ``send``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, List, Optional, Tuple

import numpy as np

from ..obs import RuntimeTracer
from .grid import RankGrid
from .stage import PipelineStage
from .tp import TAG_TP_ACK, TPComm
from .transport import RECV

__all__ = ["TAG_FWD", "TAG_BWD", "inter_layer_step"]

TAG_FWD = "forward"
TAG_BWD = "backward"

#: send callable signature: send(dst, tag, microbatch, data)
SendFn = Callable[[int, str, int, Optional[np.ndarray]], None]


def inter_layer_step(rank: int, grid: RankGrid, stage: PipelineStage,
                     send: SendFn,
                     microbatches: List[Tuple[np.ndarray, np.ndarray]],
                     total_microbatches: int, pipeline_limit: int,
                     loss_scale: float = 1.0,
                     tracer: Optional[RuntimeTracer] = None,
                     tp: Optional[TPComm] = None) -> Generator:
    """INTER_LAYER_PARALLEL_STEP for GPU ``g^{i,j}`` (Algorithm 2).

    ``send`` is the transport's non-blocking send with the source rank
    already bound; ``loss_scale`` is the mixed-precision scale in effect
    for the batch (1.0 for fp32).  The caller owns delivering packets into
    the generator in per-channel FIFO order — everything else about the
    schedule is decided here, identically on every backend.

    With ``tp`` (a :class:`~repro.runtime.tp.TPComm`; ``g_intra > 1``),
    this rank is its tensor-parallel group's *lead*: each forward also
    emits the group's weight all-gather, each backward the gradient
    reduce-scatter, and the followers' :data:`~repro.runtime.tp.TAG_TP_ACK`
    replies are absorbed by the same receive loop.
    """
    i, _j = grid.coord_of(rank)
    prev_rank = grid.prev_in_pipeline(rank)
    next_rank = grid.next_in_pipeline(rank)
    m = len(microbatches)
    queue = deque(range(m))  # microbatch ids still to inject
    divisor = float(total_microbatches)

    def inputs_of(mb: int) -> np.ndarray:
        return microbatches[mb][0]

    def targets_of(mb: int) -> np.ndarray:
        return microbatches[mb][1]

    fwd, bwd = stage.forward, stage.backward
    if tracer is not None and tracer.enabled:
        def fwd(mb, *args, **kwargs):
            with tracer.span(rank, "compute", f"fwd{mb}",
                             category="compute", microbatch=mb, stage=i):
                return stage.forward(mb, *args, **kwargs)

        def bwd(mb, *args):
            with tracer.span(rank, "compute", f"bwd{mb}",
                             category="compute", microbatch=mb, stage=i):
                return stage.backward(mb, *args)

    if tp is not None and tp.peers:
        # Wrap once more: every forward carries the group's weight
        # all-gather, every backward its gradient reduce-scatter.
        base_fwd, base_bwd = fwd, bwd

        def fwd(mb, *args, **kwargs):
            out = base_fwd(mb, *args, **kwargs)
            tp.emit_weights(mb)
            return out

        def bwd(mb, *args):
            g = base_bwd(mb, *args)
            tp.emit_grads(mb)
            return g

    tp_acks = 0 if tp is None else m * tp.acks_per_microbatch

    # Degenerate pipeline: a single stage runs everything locally; with a
    # tensor-parallel group the lead still drains the followers' acks.
    if grid.g_inter == 1:
        for mb in queue:
            fwd(mb, inputs_of(mb), targets=targets_of(mb),
                loss_divisor=divisor, loss_scale=loss_scale)
            bwd(mb)
        for _ in range(tp_acks):
            pkt = yield RECV
            if pkt.tag != TAG_TP_ACK:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"rank {rank} received unexpected packet {pkt}")
        return
        yield  # pragma: no cover - makes this function a generator

    # Warm-up (lines 3-9): the first stage injects pipeline_limit
    # microbatches.
    if grid.is_first_stage(rank):
        for _ in range(min(pipeline_limit, m)):
            mb = queue.popleft()
            out = fwd(mb, inputs_of(mb))
            send(next_rank, TAG_FWD, mb, out)

    # Expected message count: every stage processes m forward and m
    # backward passes; each non-boundary arrival is a message.
    expected = 0
    if prev_rank is not None:
        expected += m  # forward activations from upstream
    if next_rank is not None:
        expected += m  # output gradients from downstream
    expected += tp_acks  # intra-group acknowledgements

    # Steady state (lines 11-31): message-driven dispatch.
    received = 0
    while received < expected:
        pkt = yield RECV
        received += 1
        if pkt.src == prev_rank and pkt.tag == TAG_FWD:
            mb = pkt.microbatch
            if grid.is_last_stage(rank):
                fwd(mb, pkt.data, targets=targets_of(mb),
                    loss_divisor=divisor, loss_scale=loss_scale)
                grad_in = bwd(mb)  # BACKWARD(1), line 16
                send(prev_rank, TAG_BWD, mb, grad_in)
            else:
                out = fwd(mb, pkt.data)
                send(next_rank, TAG_FWD, mb, out)
        elif pkt.src == next_rank and pkt.tag == TAG_BWD:
            mb = pkt.microbatch
            grad_in = bwd(mb, pkt.data)
            if grid.is_first_stage(rank):
                if queue:  # inject a fresh microbatch (lines 23-26)
                    nxt = queue.popleft()
                    out = fwd(nxt, inputs_of(nxt))
                    send(next_rank, TAG_FWD, nxt, out)
            else:
                send(prev_rank, TAG_BWD, mb, grad_in)
        elif tp is not None and pkt.tag == TAG_TP_ACK \
                and pkt.src in tp.peers:
            pass  # intra-group acknowledgement; already counted
        else:  # pragma: no cover - defensive
            raise RuntimeError(
                f"rank {rank} received unexpected packet {pkt}"
            )
