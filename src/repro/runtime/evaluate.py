"""Evaluation: held-out loss and perplexity for serial and parallel models.

The pipeline-parallel evaluation reuses the inference path of the stages —
a forward-only sweep with no gradient bookkeeping — so a sharded model can
be validated without reassembling it on one device.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..nn import GPT, F, Tensor, no_grad
from ..nn.data import LMBatches
from .engine import AxoNNTrainer

__all__ = ["evaluate_serial", "evaluate_parallel", "perplexity"]


def perplexity(mean_loss: float) -> float:
    """exp(cross entropy) — the conventional LM quality metric."""
    if not np.isfinite(mean_loss):
        raise ValueError("loss must be finite")
    return math.exp(mean_loss)


def evaluate_serial(model: GPT, batches: LMBatches, n_batches: int,
                    start_index: int = 10_000) -> Dict[str, float]:
    """Mean loss / perplexity of ``model`` over held-out batches.

    ``start_index`` offsets the batch stream so evaluation windows never
    coincide with the training batches (index-disjoint by construction).
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    was_training = model.training
    model.eval()
    losses = []
    try:
        for i in range(n_batches):
            x, y = batches.batch(start_index + i)
            with no_grad():
                logits, _ = model(x)
                losses.append(F.cross_entropy(logits, y).item())
    finally:
        model.train(was_training)
    mean = float(np.mean(losses))
    return {"loss": mean, "perplexity": perplexity(mean),
            "n_batches": n_batches}


def evaluate_parallel(trainer: AxoNNTrainer, batches: LMBatches,
                      n_batches: int,
                      start_index: int = 10_000) -> Dict[str, float]:
    """Pipeline-parallel evaluation: forward-only sweep through pipeline 0.

    Each evaluation batch flows through the stage shards sequentially (no
    microbatching or overlap is needed for a correctness metric); losses
    come out of the last stage exactly as in training.
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    grid = trainer.grid
    stages = [trainer.stages[grid.rank_of(i, 0)]
              for i in range(grid.g_inter)]
    losses = []
    for b in range(n_batches):
        x, y = batches.batch(start_index + b)
        data = x
        with no_grad():
            for stage in stages[:-1]:
                out = stage._run_layers(
                    data if stage.is_first
                    else Tensor(np.asarray(data, dtype=np.float32)))
                data = out.data if isinstance(out, Tensor) else out
            last = stages[-1]
            hidden = last._run_layers(
                Tensor(np.asarray(data, dtype=np.float32))
                if not last.is_first else data)
            head = last.layers[-1]
            losses.append(head.loss(hidden, y).item())
    mean = float(np.mean(losses))
    return {"loss": mean, "perplexity": perplexity(mean),
            "n_batches": n_batches}
