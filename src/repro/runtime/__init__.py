"""Functional (real-numerics) message-driven runtime.

Public surface:

* :class:`RankTransport`, :class:`Packet`, :data:`RECV` — the deterministic
  cooperative transport;
* :class:`RankGrid` — the G_inter x G_data process grid;
* :class:`PipelineStage`, :func:`partition_layers` — network sharding;
* :class:`AxoNNTrainer` — Algorithms 1-2 end to end;
* :class:`SerialTrainer` — the single-GPU reference.
"""

from .checkpointing import (
    load_trainer,
    load_trainer_state,
    save_trainer,
    trainer_state_dict,
)
from .collectives import ring_allreduce, ring_allreduce_program
from .evaluate import evaluate_parallel, evaluate_serial, perplexity
from .engine import BACKENDS, AxoNNTrainer, TrainReport
from .grid import RankGrid
from .offload import BucketedOffloadAdamW
from .parallel import (ProcessBackend, ProcessPool, ProcessTransport,
                       ProgramSpec)
from .rankprog import inter_layer_step
from .serial import SerialTrainer, state_dict_as_slots
from .shm import ShmRing
from .stage import InferenceStage, PipelineStage, partition_layers
from .transport import (RECV, BaseRankTransport, DeadlockError, Packet,
                        ProtocolError, RankFailure, RankTransport)

__all__ = [
    "load_trainer",
    "load_trainer_state",
    "save_trainer",
    "trainer_state_dict",
    "evaluate_parallel",
    "evaluate_serial",
    "perplexity",
    "ring_allreduce",
    "ring_allreduce_program",
    "AxoNNTrainer",
    "TrainReport",
    "BACKENDS",
    "RankGrid",
    "BucketedOffloadAdamW",
    "ProcessBackend",
    "ProcessPool",
    "ProcessTransport",
    "ProgramSpec",
    "inter_layer_step",
    "SerialTrainer",
    "state_dict_as_slots",
    "InferenceStage",
    "PipelineStage",
    "partition_layers",
    "ShmRing",
    "BaseRankTransport",
    "RankTransport",
    "RankFailure",
    "Packet",
    "RECV",
    "DeadlockError",
    "ProtocolError",
]
