"""Functional (real-numerics) message-driven runtime.

Public surface:

* :class:`RankTransport`, :class:`Packet`, :data:`RECV` — the deterministic
  cooperative transport;
* :class:`RankGrid` — the G_inter x G_data process grid;
* :class:`PipelineStage`, :func:`partition_layers` — network sharding;
* :class:`AxoNNTrainer` — Algorithms 1-2 end to end;
* :class:`SerialTrainer` — the single-GPU reference.
"""

from .checkpointing import (
    load_trainer,
    load_trainer_state,
    save_trainer,
    trainer_state_dict,
)
from .collectives import ring_allreduce
from .evaluate import evaluate_parallel, evaluate_serial, perplexity
from .engine import AxoNNTrainer, TrainReport
from .grid import RankGrid
from .offload import BucketedOffloadAdamW
from .serial import SerialTrainer, state_dict_as_slots
from .stage import InferenceStage, PipelineStage, partition_layers
from .transport import RECV, DeadlockError, Packet, ProtocolError, RankTransport

__all__ = [
    "load_trainer",
    "load_trainer_state",
    "save_trainer",
    "trainer_state_dict",
    "evaluate_parallel",
    "evaluate_serial",
    "perplexity",
    "ring_allreduce",
    "AxoNNTrainer",
    "TrainReport",
    "RankGrid",
    "BucketedOffloadAdamW",
    "SerialTrainer",
    "state_dict_as_slots",
    "InferenceStage",
    "PipelineStage",
    "partition_layers",
    "RankTransport",
    "Packet",
    "RECV",
    "DeadlockError",
    "ProtocolError",
]
