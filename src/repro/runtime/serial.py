"""Serial single-GPU reference trainer (the paper's "PyTorch" baseline).

Used by the Fig. 10 validation experiment: training GPT with this loop and
with :class:`~repro.runtime.engine.AxoNNTrainer` on the same data must
produce coinciding loss curves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import GPT, AdamW, GPTConfig

__all__ = ["SerialTrainer", "state_dict_as_slots"]


class SerialTrainer:
    """Full-batch training of the reference GPT."""

    def __init__(self, cfg: GPTConfig, lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999),
                 weight_decay: float = 0.01):
        self.cfg = cfg
        self.model = GPT(cfg)
        self.optimizer = AdamW(self.model.parameters(), lr=lr, betas=betas,
                               weight_decay=weight_decay)
        self.batches_trained = 0

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimizer step on the full batch; returns the mean loss."""
        self.optimizer.zero_grad()
        _logits, loss = self.model(x, targets=y)
        loss.backward()
        self.optimizer.step()
        self.batches_trained += 1
        return loss.item()

    def loss_curve(self, batches, n: int) -> List[float]:
        """Train for ``n`` batches from an :class:`LMBatches`-like source."""
        losses = []
        for i in range(n):
            x, y = batches.batch(i)
            losses.append(self.train_batch(x, y))
        return losses


def state_dict_as_slots(model: GPT) -> Dict[str, np.ndarray]:
    """Serial model state keyed the way the pipeline shards key theirs
    (``slot{k}.<param>``), for direct comparison with
    :meth:`AxoNNTrainer.gather_state`."""
    state: Dict[str, np.ndarray] = {}
    for slot, layer in enumerate(model.layer_sequence()):
        for name, p in layer.named_parameters():
            state[f"slot{slot}.{name}"] = p.data.copy()
    return state
