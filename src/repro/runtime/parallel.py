"""Real-parallelism execution backend: one OS process per rank.

The cooperative :class:`~repro.runtime.transport.RankTransport` sweeps
every rank program inside a single Python process — deterministic and
perfect for verification, but bound by one core.  This module provides the
other end of the trade: each rank program runs in its **own OS process**,
NumPy payloads move over :mod:`multiprocessing.shared_memory` ring buffers
(:mod:`repro.runtime.shm`), and the paper's "as fast as the hardware
allows" claim becomes literal on a multi-core machine.

Both backends implement the same contract
(:class:`~repro.runtime.transport.BaseRankTransport`) and drive the same
rank-program generators (:mod:`repro.runtime.rankprog`), so the schedule —
and therefore the numerics — are identical:

* every backward pass on a rank happens in microbatch order under *any*
  FIFO-respecting delivery (by induction from the first stage's injection
  order, the bwd channel out of the last stage carries microbatches in
  increasing order), so gradient accumulation order is
  concurrency-invariant;
* the data-parallel phase (chunked fp16 all-reduce draw order) and the
  optimizer stay in the parent, byte-for-byte the cooperative code path;
* dropout RNG bit-generator states ship parent → worker before the batch
  and worker → parent after it.

The cross-backend fuzz test pins losses and weights bit-identical.

Failure semantics are *real*: a crash fault SIGKILLs the worker process;
the parent detects death via the process sentinel (and wall-clock
heartbeat staleness as a backstop) and raises
:class:`~repro.runtime.transport.RankFailure`, which the resilience layer
answers with its usual rollback-respawn — the dead worker process is
respawned transparently before the next batch.

Time units: the cooperative transport counts scheduler sweeps ("ticks");
here one tick is ``tick_s`` wall-clock seconds, so ``yield
recv_within(n)`` means *n × tick_s* seconds and heartbeat timeouts are
wall-clock (``detect_timeout_s``).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import struct
import threading
import time
import traceback
import types
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..analysis.protocol import ProtocolError, TraceRecorder
from ..obs import RuntimeTracer, append_spans_jsonl
from ..obs.schema import ObsSpan
from .shm import RingAborted, ShmRing, attach_shared_memory
from .transport import (BaseRankTransport, DeadlockError, Packet, RECV,
                        RankFailure, TimedRecv)

__all__ = ["ProcessTransport", "ProcessBackend", "ProcessPool",
           "ProgramSpec", "WorkerContext"]

# fork is the fast path (no module re-import per worker) and exists on
# every Linux; everything shipped over the control pipes is picklable, so
# the spawn fallback works too (macOS default since 3.8).
_MP = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods()
    else "spawn")

#: default seconds per transport "tick" (the unit of recv_within)
DEFAULT_TICK_S = 0.05
#: wall-clock heartbeat staleness before a live-looking rank is declared
#: dead (generous: the heartbeat only pauses during compute)
DEFAULT_DETECT_TIMEOUT_S = 30.0
#: wall-clock with zero progress and every rank blocked => deadlock
DEFAULT_HANG_TIMEOUT_S = 60.0

_POLL_SLEEP = 200e-6
_STATUS_COMPUTING = 0
_STATUS_WAITING = 1
_STATUS_WAITING_TIMED = 2

_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")


def _payload_ok(data: Any) -> bool:
    """REP008's runtime twin: payloads crossing a process boundary must be
    arrays / plain picklable values — never closures or generators."""
    return not (callable(data) or isinstance(data, types.GeneratorType))


class _Aborted(Exception):
    """Internal: the run was aborted (peer death or parent decision)."""


class _StateBlock:
    """Tiny shared segment for cross-process liveness bookkeeping.

    Layout: ``[abort: u64][heartbeat: n x f64][recvs: n x u64]
    [status: n x u8]``.  Each field has exactly one writer (abort: parent;
    the per-rank fields: that rank's worker), so plain aligned stores are
    the only synchronization needed, exactly as in :class:`ShmRing`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, n: int, owner: bool):
        self._shm = shm
        self.n = n
        self._owner = owner
        self.buf = shm.buf

    @classmethod
    def size(cls, n: int) -> int:
        return 8 + 8 * n + 8 * n + n

    @classmethod
    def create(cls, n: int) -> "_StateBlock":
        shm = shared_memory.SharedMemory(create=True, size=cls.size(n))
        shm.buf[:cls.size(n)] = b"\x00" * cls.size(n)
        return cls(shm, n, owner=True)

    @classmethod
    def attach(cls, name: str, n: int) -> "_StateBlock":
        return cls(attach_shared_memory(name), n, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # abort flag (parent-written)
    @property
    def abort(self) -> bool:
        return _U64.unpack_from(self.buf, 0)[0] != 0

    def set_abort(self, value: bool) -> None:
        _U64.pack_into(self.buf, 0, 1 if value else 0)

    # per-rank fields (worker-written)
    def beat(self, rank: int) -> None:
        _F64.pack_into(self.buf, 8 + 8 * rank, time.monotonic())

    def heartbeat(self, rank: int) -> float:
        return _F64.unpack_from(self.buf, 8 + 8 * rank)[0]

    def bump_recvs(self, rank: int) -> None:
        off = 8 + 8 * self.n + 8 * rank
        _U64.pack_into(self.buf, off, _U64.unpack_from(self.buf, off)[0] + 1)

    def recvs(self, rank: int) -> int:
        return _U64.unpack_from(self.buf, 8 + 8 * self.n + 8 * rank)[0]

    def set_status(self, rank: int, status: int) -> None:
        self.buf[8 + 16 * self.n + rank] = status

    def status(self, rank: int) -> int:
        return self.buf[8 + 16 * self.n + rank]

    def close(self) -> None:
        self.buf = None
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass


class ProgramSpec:
    """A picklable rank-program description for :class:`ProcessTransport`.

    ``fn`` must be a module-level callable invoked in the worker as
    ``fn(rank, send, *args)``; it may return a generator (driven under the
    RECV protocol) or a plain value (a program with no receives).  The
    generator's ``return`` value becomes the program's result.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, *args: Any):
        self.fn = fn
        self.args = args


class WorkerContext:
    """Worker-side execution context: the rank's endpoints and bookkeeping.

    One instance lives for the worker's whole life; :attr:`cache` persists
    across commands (the trainer caches its rebuilt
    :class:`~repro.runtime.stage.PipelineStage` there so stage
    construction cost is paid once, not per batch).
    """

    def __init__(self, rank: int, n_ranks: int,
                 out_rings: Dict[int, ShmRing],
                 in_rings: Dict[int, ShmRing],
                 state: _StateBlock, tick_s: float,
                 tracer: RuntimeTracer,
                 trace_path: Optional[str]):
        self.rank = rank
        self.n_ranks = n_ranks
        self.out_rings = out_rings
        self.in_rings = dict(sorted(in_rings.items()))
        self.state = state
        self.tick_s = tick_s
        self.tracer = tracer
        self.trace_path = trace_path
        self.cache: Dict[str, Any] = {}
        #: per-command bookkeeping, reset by the main loop
        self.events: List[Tuple] = []
        self.messages_sent = 0
        #: SIGKILL self when this many receives have completed (crash
        #: fault translation; None = no crash scheduled)
        self.kill_after: Optional[int] = None
        self._receives_done = 0

    # -- sending -----------------------------------------------------------
    def send(self, dst: int, tag: str, microbatch: int,
             data: Any = None) -> None:
        """Non-blocking-ish buffered send: one pickle + memcpy into the
        ``(rank, dst)`` ring; blocks only when the ring is full (bounded
        buffering — MPI_Isend with a finite buffer pool)."""
        ring = self.out_rings.get(dst)
        if ring is None:
            raise ProtocolError(
                f"rank {self.rank} has no channel to rank {dst}")
        if not _payload_ok(data):
            raise ProtocolError(
                f"rank {self.rank} sent a {type(data).__name__} to rank "
                f"{dst}: payloads crossing process boundaries must be "
                f"arrays or plain picklable values (REP008)")
        ts = self.tracer.now() if self.tracer.enabled else 0.0
        ring.push((tag, microbatch, ts, data), abort=self._abort_check)
        self.messages_sent += 1
        self.events.append(("send", self.rank, dst, tag, microbatch))

    def _abort_check(self) -> bool:
        self.state.beat(self.rank)
        return self.state.abort

    # -- receiving ---------------------------------------------------------
    def _maybe_crash(self) -> None:
        if self.kill_after is not None \
                and self._receives_done >= self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)  # never returns

    def _recv(self, deadline: Optional[float]) -> Packet:
        """Poll the incoming rings (ascending source order) until a frame
        arrives; heartbeat every sweep; honor abort and the deadline."""
        self._maybe_crash()
        state, rank = self.state, self.rank
        state.set_status(rank, _STATUS_WAITING_TIMED if deadline is not None
                         else _STATUS_WAITING)
        try:
            spins = 0
            while True:
                state.beat(rank)
                for src, ring in self.in_rings.items():
                    msg = ring.pop()
                    if msg is not None:
                        tag, microbatch, ts, data = msg
                        state.bump_recvs(rank)
                        self._receives_done += 1
                        if self.tracer.enabled:
                            nbytes = int(getattr(data, "nbytes", 0)) \
                                if data is not None else None
                            self.tracer.record(
                                src, "net", tag, ts, self.tracer.now(),
                                category="p2p", microbatch=microbatch,
                                nbytes=nbytes, src=src, dst=rank)
                        self.events.append(
                            ("recv", rank, src, tag, microbatch))
                        return Packet(src, rank, tag, microbatch, data)
                if state.abort:
                    raise _Aborted(f"rank {rank} recv aborted")
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"rank {rank} recv timed out after deadline")
                spins += 1
                if spins >= 64:
                    time.sleep(_POLL_SLEEP)
        finally:
            state.set_status(rank, _STATUS_COMPUTING)

    def drive(self, gen: Generator) -> Any:
        """Drive one rank-program generator under the RECV protocol;
        returns the generator's ``return`` value."""
        try:
            try:
                request = next(gen)
            except StopIteration as stop:
                return stop.value
            while True:
                if isinstance(request, TimedRecv):
                    deadline = time.monotonic() \
                        + request.timeout * self.tick_s
                elif request == RECV:
                    deadline = None
                else:
                    raise ProtocolError(
                        f"rank {self.rank} yielded {request!r}; rank "
                        f"programs may only yield RECV or recv_within(...)")
                try:
                    pkt = self._recv(deadline)
                except TimeoutError as exc:
                    try:
                        request = gen.throw(exc)
                    except StopIteration as stop:
                        return stop.value
                    continue
                try:
                    request = gen.send(pkt)
                except StopIteration as stop:
                    return stop.value
        finally:
            gen.close()


def _run_program_task(ctx: WorkerContext, spec: ProgramSpec) -> Any:
    """Generic worker task: build and drive one :class:`ProgramSpec`."""
    result = spec.fn(ctx.rank, ctx.send, *spec.args)
    if isinstance(result, types.GeneratorType):
        return ctx.drive(result)
    return result


def _worker_main(rank: int, n_ranks: int,
                 out_ring_names: Dict[int, Tuple[str, int]],
                 in_ring_names: Dict[int, Tuple[str, int]],
                 state_name: str, conn, tick_s: float,
                 trace_origin: Optional[float],
                 trace_dir: Optional[str]) -> None:
    """Worker process entry: attach shared memory, loop over commands.

    Every command is ``("call", fn, args)`` with a module-level ``fn``
    invoked as ``fn(ctx, *args)``; the reply is ``(status, payload,
    events, spans, messages_sent)`` with status ``"ok"`` / ``"aborted"``
    / ``"error"``.  Spans are additionally streamed to
    ``{trace_dir}/rank{rank}.jsonl`` with the worker's real pid, so they
    survive a SIGKILL of this very process.
    """
    out_rings = {dst: ShmRing.attach(name, cap)
                 for dst, (name, cap) in out_ring_names.items()}
    in_rings = {src: ShmRing.attach(name, cap)
                for src, (name, cap) in in_ring_names.items()}
    state = _StateBlock.attach(state_name, n_ranks)
    tracer = RuntimeTracer(enabled=trace_origin is not None)
    if trace_origin is not None:
        # Align to the parent's origin: perf_counter is CLOCK_MONOTONIC on
        # Linux, shared across processes, so spans line up in one trace.
        tracer._origin = trace_origin
        # Ring instrumentation for the race detector: every completed
        # push/pop lands in this worker's span stream (and thus its JSONL
        # file, in program order) as a zero-width ``sync`` marker carrying
        # the byte range and the peer counter the operation synchronized
        # on.  repro.analysis.races rebuilds happens-before from these.
        def _ring_observer(ring_label, capacity):
            def observe(op, pos, size, seen):
                now = tracer.now()
                tracer.record(rank, "sync", f"ring-{op}", now, now,
                              category="other", ring=ring_label,
                              pos=int(pos), size=int(size),
                              capacity=capacity, seen=int(seen))
            return observe

        for dst, ring in out_rings.items():
            ring.observer = _ring_observer(f"{rank}->{dst}", ring.capacity)
        for src, ring in in_rings.items():
            ring.observer = _ring_observer(f"{src}->{rank}", ring.capacity)
    trace_path = (os.path.join(trace_dir, f"rank{rank}.jsonl")
                  if trace_dir is not None else None)
    ctx = WorkerContext(rank, n_ranks, out_rings, in_rings, state, tick_s,
                        tracer, trace_path)
    state.beat(rank)

    # Beat from a daemon thread so the heartbeat tracks *process* liveness
    # rather than recv activity: a rank legitimately computing for longer
    # than detect_timeout_s (a deep stage, a degenerate one-rank pipeline)
    # must not read as dead.  NumPy kernels release the GIL, so the thread
    # keeps beating through long compute; a SIGSTOPped or swapped-out
    # worker stops beating, which is exactly what the detector is for.
    stop_beating = threading.Event()

    def _beater() -> None:  # pragma: no cover - timing-dependent helper
        while not stop_beating.wait(tick_s):
            state.beat(rank)

    threading.Thread(target=_beater, daemon=True,
                     name=f"rank{rank}-heartbeat").start()
    try:
        while True:
            cmd = conn.recv()
            if cmd[0] == "stop":
                break
            _verb, fn, args = cmd
            ctx.events = []
            ctx.messages_sent = 0
            ctx.kill_after = None
            ctx._receives_done = 0
            tracer.clear()
            state.beat(rank)
            try:
                payload = fn(ctx, *args)
                status = "ok"
            except (_Aborted, RingAborted):
                payload, status = None, "aborted"
            except BaseException:
                payload, status = traceback.format_exc(), "error"
            spans = list(tracer.spans)
            if trace_path is not None and spans:
                try:
                    append_spans_jsonl(trace_path, spans, pid=os.getpid())
                except OSError:
                    pass  # tracing must never take the worker down
            conn.send((status, payload, ctx.events, spans,
                       ctx.messages_sent))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        stop_beating.set()
        for ring in (*out_rings.values(), *in_rings.values()):
            ring.close()
        state.close()


class _WorkerHandle:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn


class ProcessPool:
    """Owns the worker processes, rings and the shared state block.

    ``channels`` is the list of directed ``(src, dst)`` pairs that get a
    ring; pass None for all-pairs (fine for small worlds — the trainer
    passes just the pipeline-neighbor channels).
    """

    def __init__(self, n_ranks: int, *,
                 channels: Optional[List[Tuple[int, int]]] = None,
                 ring_capacity: int = 1 << 20,
                 tick_s: float = DEFAULT_TICK_S,
                 detect_timeout_s: float = DEFAULT_DETECT_TIMEOUT_S,
                 hang_timeout_s: float = DEFAULT_HANG_TIMEOUT_S,
                 trace_origin: Optional[float] = None,
                 trace_dir: Optional[str] = None):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        if channels is None:
            channels = [(s, d) for s in range(n_ranks)
                        for d in range(n_ranks) if s != d]
        self.channels = list(channels)
        self.ring_capacity = ring_capacity
        self.tick_s = tick_s
        self.detect_timeout_s = detect_timeout_s
        self.hang_timeout_s = hang_timeout_s
        self.trace_origin = trace_origin
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
        self.rings: Dict[Tuple[int, int], ShmRing] = {
            ch: ShmRing.create(ring_capacity) for ch in self.channels}
        self.state = _StateBlock.create(n_ranks)
        self.workers: Dict[int, _WorkerHandle] = {}
        self._closed = False

    # -- worker lifecycle --------------------------------------------------
    def _spawn(self, rank: int) -> None:
        parent_conn, child_conn = _MP.Pipe()
        out_names = {d: (self.rings[(s, d)].name, self.ring_capacity)
                     for (s, d) in self.channels if s == rank}
        in_names = {s: (self.rings[(s, d)].name, self.ring_capacity)
                    for (s, d) in self.channels if d == rank}
        proc = _MP.Process(
            target=_worker_main,
            args=(rank, self.n_ranks, out_names, in_names, self.state.name,
                  child_conn, self.tick_s, self.trace_origin,
                  self.trace_dir),
            daemon=True)
        proc.start()
        child_conn.close()
        self.workers[rank] = _WorkerHandle(proc, parent_conn)
        self.state.beat(rank)

    def start(self) -> None:
        for rank in range(self.n_ranks):
            if rank not in self.workers:
                self._spawn(rank)

    def alive(self, rank: int) -> bool:
        h = self.workers.get(rank)
        return h is not None and h.proc.is_alive()

    def kill(self, rank: int) -> None:
        """SIGKILL one worker (real crash injection)."""
        h = self.workers.get(rank)
        if h is not None and h.proc.is_alive():
            os.kill(h.proc.pid, signal.SIGKILL)
            h.proc.join(timeout=10.0)

    def respawn_dead(self) -> List[int]:
        """Respawn every dead worker; returns the ranks respawned."""
        respawned = []
        for rank in range(self.n_ranks):
            h = self.workers.get(rank)
            if h is None or not h.proc.is_alive():
                if h is not None:
                    h.proc.join(timeout=10.0)
                    h.conn.close()
                self._spawn(rank)
                respawned.append(rank)
        return respawned

    # -- work dispatch -----------------------------------------------------
    def submit(self, rank: int, fn: Callable, *args: Any) -> None:
        self.workers[rank].conn.send(("call", fn, args))

    def _drain_replies(self, pending: set, results: Dict[int, Tuple]) -> None:
        for r in list(pending):
            conn = self.workers[r].conn
            try:
                while conn.poll(0):
                    results[r] = conn.recv()
                    pending.discard(r)
            except (EOFError, OSError):
                pass  # worker died with the pipe open; sentinel check owns it

    def gather(self, ranks: List[int]) -> Dict[int, Tuple]:
        """Collect one reply per rank, watching for death and hangs.

        Raises :class:`RankFailure` when a worker process dies or stops
        heartbeating, :class:`DeadlockError` when every outstanding rank
        sits blocked on a receive with zero progress for
        ``hang_timeout_s``.  Either way the surviving workers are aborted,
        settled and respawned as needed, so the pool is reusable.
        """
        pending = set(ranks)
        results: Dict[int, Tuple] = {}
        now = time.monotonic()
        last_progress = now
        progress_mark = self._progress_snapshot()
        # Liveness = the heartbeat slot keeps *changing*, not its absolute
        # value: the parent can catch a torn read of the f64 mid-write (the
        # two sides are separate processes with no lock), and a garbage
        # value must not read as "30s stale".  A live worker rewrites the
        # slot every tick, so "unchanged for detect_timeout_s" is the
        # tear-proof staleness predicate.
        hb_seen = {r: (self.state.heartbeat(r), now) for r in pending}
        while pending:
            self._drain_replies(pending, results)
            if not pending:
                break
            if any(reply[0] == "error" for reply in results.values()):
                # A worker raised: its peers may be blocked on messages
                # that will never come.  Abort them now and let the caller
                # surface the worker's traceback, not a deadlock timeout.
                self._settle_failure(pending)
                break
            dead = [r for r in pending if not self.workers[r].proc.is_alive()]
            if dead:
                # One last drain: the reply may have raced the death check.
                self._drain_replies(pending, results)
                dead = [r for r in pending
                        if not self.workers[r].proc.is_alive()]
            if dead:
                self._settle_failure(pending - set(dead))
                raise RankFailure(
                    f"rank(s) {sorted(dead)} died (worker process exited); "
                    f"declared failed via process sentinel",
                    dead=sorted(dead),
                    detected_at=int(sum(self.state.recvs(r)
                                        for r in range(self.n_ranks))),
                    crashed_at={r: int(self.state.recvs(r)) for r in dead})
            now = time.monotonic()
            stale = []
            for r in pending:
                hb = self.state.heartbeat(r)
                seen_hb, seen_at = hb_seen[r]
                if hb != seen_hb:
                    hb_seen[r] = (hb, now)
                elif now - seen_at > self.detect_timeout_s:
                    stale.append(r)
            if stale:
                for r in stale:
                    self.kill(r)
                self._settle_failure(pending - set(stale))
                raise RankFailure(
                    f"rank(s) {sorted(stale)} stopped heartbeating for "
                    f"{self.detect_timeout_s}s (wall clock); declared dead",
                    dead=sorted(stale),
                    detected_at=int(sum(self.state.recvs(r)
                                        for r in range(self.n_ranks))),
                    crashed_at={r: int(self.state.recvs(r)) for r in stale})
            snapshot = self._progress_snapshot()
            if snapshot != progress_mark:
                progress_mark = snapshot
                last_progress = now
            elif now - last_progress > self.hang_timeout_s and all(
                    self.state.status(r) == _STATUS_WAITING
                    for r in pending):
                stuck = sorted(pending)
                self._settle_failure(pending)
                raise DeadlockError(
                    f"rank(s) {stuck} blocked on empty channels with zero "
                    f"progress for {self.hang_timeout_s}s — deadlock",
                    stuck=stuck,
                    orphans=self.drain_rings())
            time.sleep(_POLL_SLEEP)
        return results

    def _progress_snapshot(self) -> Tuple:
        return (tuple(self.state.recvs(r) for r in range(self.n_ranks)),
                tuple(ring.unread() for ring in self.rings.values()))

    def _settle_failure(self, survivors: set, grace_s: float = 10.0) -> None:
        """Abort outstanding survivors, wait for them to come back to the
        command loop (or kill the truly stuck), respawn the dead, drain
        every ring and clear abort — leaving the pool ready for reuse."""
        self.state.set_abort(True)
        deadline = time.monotonic() + grace_s
        waiting = set(survivors)
        sink: Dict[int, Tuple] = {}
        while waiting and time.monotonic() < deadline:
            self._drain_replies(waiting, sink)
            waiting = {r for r in waiting if self.workers[r].proc.is_alive()}
            time.sleep(_POLL_SLEEP)
        for r in waiting:  # stuck mid-compute past the grace period
            self.kill(r)
        self.respawn_dead()
        self.drain_rings()
        self.state.set_abort(False)

    # -- introspection / cleanup -------------------------------------------
    def pending(self, rank: int) -> int:
        """Messages buffered toward ``rank`` across its incoming rings."""
        return sum(ring.frames() for (s, d), ring in self.rings.items()
                   if d == rank)

    def drain_rings(self) -> List[Packet]:
        """Consume every buffered frame (only safe while workers are idle
        in their command loop); returns them as orphan packets."""
        orphans: List[Packet] = []
        for (src, dst), ring in self.rings.items():
            for tag, microbatch, _ts, data in ring.drain():
                orphans.append(Packet(src, dst, tag, microbatch, data))
        return orphans

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for rank, h in self.workers.items():
            try:
                if h.proc.is_alive():
                    h.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for h in self.workers.values():
            h.proc.join(timeout=5.0)
            if h.proc.is_alive():  # pragma: no cover - stuck worker
                h.proc.terminate()
                h.proc.join(timeout=5.0)
            h.conn.close()
        for ring in self.rings.values():
            ring.close()
            ring.unlink()
        self.state.close()
        self.state.unlink()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


class ProcessTransport(BaseRankTransport):
    """The :class:`BaseRankTransport` contract over real OS processes.

    ``run`` takes :class:`ProgramSpec` values (picklable program
    descriptions) instead of live generators — a generator cannot cross a
    process boundary — and returns ``{rank: program return value}``.
    Everything else matches the cooperative transport: non-blocking
    buffered sends, FIFO per channel, heartbeats, :class:`RankFailure` on
    real process death, strict end-of-run orphan checks, recorder and
    tracer integration.
    """

    def __init__(self, n_ranks: int, *,
                 recorder: Optional[TraceRecorder] = None,
                 tracer: Optional[RuntimeTracer] = None,
                 strict: bool = True,
                 channels: Optional[List[Tuple[int, int]]] = None,
                 ring_capacity: int = 1 << 20,
                 tick_s: float = DEFAULT_TICK_S,
                 detect_timeout_s: float = DEFAULT_DETECT_TIMEOUT_S,
                 hang_timeout_s: float = DEFAULT_HANG_TIMEOUT_S,
                 trace_dir: Optional[str] = None,
                 pool: Optional[ProcessPool] = None):
        super().__init__(n_ranks, recorder=recorder, tracer=tracer,
                         strict=strict)
        tracing = tracer is not None and tracer.enabled
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else ProcessPool(
            n_ranks, channels=channels, ring_capacity=ring_capacity,
            tick_s=tick_s, detect_timeout_s=detect_timeout_s,
            hang_timeout_s=hang_timeout_s,
            trace_origin=tracer._origin if tracing else None,
            trace_dir=trace_dir)

    def send(self, src: int, dst: int, tag: str, microbatch: int,
             data: Any = None) -> None:
        """Parent-side send: pre-seeds a channel before ``run`` (workers
        send through their own endpoints while running)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError(f"rank {src} sending to itself")
        if not _payload_ok(data):
            raise ProtocolError(
                f"payload of type {type(data).__name__} cannot cross "
                f"ProcessTransport.send (REP008): use arrays or plain "
                f"picklable values")
        ring = self.pool.rings.get((src, dst))
        if ring is None:
            raise ProtocolError(f"no channel {src} -> {dst}")
        self._next_send_seq()
        ring.push((tag, microbatch, 0.0, data))
        self.messages_sent += 1
        if self.recorder is not None:
            self.recorder.record_send(src, dst, tag, microbatch)

    def pending(self, rank: int) -> int:
        self._check_rank(rank)
        return self.pool.pending(rank)

    def run(self, programs: Dict[int, ProgramSpec]) -> Dict[int, Any]:
        for rank in programs:
            self._check_rank(rank)
        self.pool.start()
        for rank, spec in programs.items():
            if not isinstance(spec, ProgramSpec):
                raise ProtocolError(
                    f"rank {rank}: ProcessTransport.run takes ProgramSpec "
                    f"values, not {type(spec).__name__} (generators cannot "
                    f"cross process boundaries)")
            self.pool.submit(rank, _run_program_task, spec)
        try:
            replies = self.pool.gather(sorted(programs))
        except RankFailure as failure:
            self.dead.update(failure.dead)
            raise
        return self._consume_replies(replies)

    def _consume_replies(self, replies: Dict[int, Tuple]) -> Dict[int, Any]:
        results: Dict[int, Any] = {}
        errors: List[str] = []
        for rank in sorted(replies):
            status, payload, events, spans, sent = replies[rank]
            self.messages_sent += sent
            self._merge_events(events)
            self._merge_spans(spans)
            if status == "error":
                errors.append(f"rank {rank}:\n{payload}")
            elif status == "ok":
                results[rank] = payload
                self.finished.add(rank)
        if errors:
            raise RuntimeError(
                "worker process(es) raised:\n" + "\n".join(errors))
        orphans = self.pool.drain_rings()
        if orphans:
            self.lost_packets.extend(orphans)
            if self.strict:
                raise self._orphan_error(orphans)
        return results

    def _merge_events(self, events: List[Tuple]) -> None:
        if self.recorder is None:
            return
        # Per-rank event order is each worker's local order, which is the
        # per-channel FIFO order — exactly what verify_trace checks; the
        # interleaving across ranks is irrelevant to it.
        for ev in events:
            if ev[0] == "send":
                _kind, src, dst, tag, microbatch = ev
                self.recorder.record_send(src, dst, tag, microbatch)
            elif ev[0] == "recv":
                _kind, rank, src, tag, microbatch = ev
                self.recorder.record_recv(rank, src, tag, microbatch)
            elif ev[0] == "collective":
                _kind, rank, op, key = ev[:4]  # may carry trailing nbytes
                self.recorder.record_collective(rank, op, key)

    def _merge_spans(self, spans: List[ObsSpan]) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.spans.extend(spans)

    def close(self) -> None:
        if self._owns_pool:
            self.pool.close()


def _train_step_task(ctx: WorkerContext, payload: Dict[str, Any]
                     ) -> Dict[str, Any]:
    """Worker task for one inter-layer phase of one training batch.

    Rebuilds (once, cached) this rank's :class:`PipelineStage`, loads the
    parent's current parameters from the rank's parameter block, restores
    dropout RNG state, drives :func:`inter_layer_step` over the rings,
    then writes the accumulated gradients back and returns losses + RNG
    state — everything the parent needs to run the (unchanged)
    data-parallel phase and optimizer.
    """
    from .checkpointing import _dropout_modules
    from .rankprog import inter_layer_step
    from .stage import PipelineStage
    from .tp import TensorParallelStage, TPComm

    rank = ctx.rank
    grid = payload["grid"]
    cfg = payload["cfg"]
    stage_key = (repr(cfg), grid.g_inter, grid.g_intra,
                 payload["checkpoint_activations"])
    stage: Optional[PipelineStage] = ctx.cache.get("stage")
    if stage is None or ctx.cache.get("stage_key") != stage_key:
        i, _j = grid.coord_of(rank)
        if grid.g_intra > 1:
            stage = TensorParallelStage(cfg, i, grid.g_inter, grid.g_intra)
        else:
            stage = PipelineStage(
                cfg, i, grid.g_inter,
                checkpoint_activations=payload["checkpoint_activations"])
        ctx.cache["stage"] = stage
        ctx.cache["stage_key"] = stage_key
        old = ctx.cache.pop("param_shm", None)
        if old is not None:
            old.close()
    shm = ctx.cache.get("param_shm")
    if shm is None or shm.name != payload["param_shm"]:
        if shm is not None:
            shm.close()
        shm = attach_shared_memory(payload["param_shm"])
        ctx.cache["param_shm"] = shm
    params = stage.parameters()
    numel = sum(p.size for p in params)
    flat = np.ndarray((2 * numel,), dtype=np.float32, buffer=shm.buf)
    offset = 0
    for p in params:
        p.data[...] = flat[offset:offset + p.size].reshape(p.data.shape)
        p.grad = None
        offset += p.size
    drops = _dropout_modules(stage)
    for m, st in zip(drops, payload["rng_states"]):
        m.rng.bit_generator.state = st
    stage.microbatch_losses.clear()
    stage._inflight.clear()
    ctx.kill_after = payload.get("kill_after")
    ctx._maybe_crash()  # a crash scheduled before the first receive

    tp = None
    if grid.g_intra > 1:
        tp = TPComm(rank, grid, ctx.send,
                    wgt_payload=stage.wgt_payload,
                    grad_payload=stage.grad_payload,
                    record=_worker_tp_record(ctx))
    gen = inter_layer_step(
        rank, grid, stage, ctx.send, payload["microbatches"],
        payload["total_microbatches"], payload["pipeline_limit"],
        loss_scale=payload["loss_scale"],
        tracer=ctx.tracer if ctx.tracer.enabled else None,
        tp=tp)
    if isinstance(gen, types.GeneratorType):
        ctx.drive(gen)

    grad_mask = []
    offset = numel
    for p in params:
        if p.grad is None:
            grad_mask.append(False)
            flat[offset:offset + p.size] = 0.0
        else:
            grad_mask.append(True)
            flat[offset:offset + p.size] = p.grad.reshape(-1)
        offset += p.size
    return {
        "losses": dict(stage.microbatch_losses),
        "rng_states": [m.rng.bit_generator.state for m in drops],
        "grad_mask": grad_mask,
        "inflight": stage.inflight_microbatches,
    }


def _worker_tp_record(ctx: WorkerContext):
    """Worker-side TP collective sink: events for the parent's recorder
    and perf counters, plus a zero-width ``tp`` span when tracing."""
    def record(rank: int, op: str, key: Tuple, nbytes: int) -> None:
        ctx.events.append(("collective", rank, op, key, nbytes))
        if ctx.tracer.enabled:
            now = ctx.tracer.now()
            ctx.tracer.record(rank, "tp", op, now, now, category="tp",
                              nbytes=nbytes, group=str(key[0]),
                              direction=key[1], microbatch=key[2])
    return record


def _tp_follower_task(ctx: WorkerContext, payload: Dict[str, Any]
                      ) -> Dict[str, Any]:
    """Worker task for a tensor-parallel follower (``t > 0``): receive the
    lead's weight/gradient shard messages for the batch and acknowledge
    each one.  Followers hold no stage, so the reply carries nothing to
    apply — the parent only merges its events and spans."""
    from .tp import TPComm, tp_follower_step

    grid = payload["grid"]
    comm = TPComm(ctx.rank, grid, ctx.send,
                  record=_worker_tp_record(ctx))
    ctx.kill_after = payload.get("kill_after")
    ctx._maybe_crash()
    gen = tp_follower_step(ctx.rank, grid, comm,
                           payload["total_microbatches"])
    if isinstance(gen, types.GeneratorType):
        ctx.drive(gen)
    return {"follower": True}


class ProcessBackend:
    """The trainer's bridge to the process pool.

    Owns one persistent :class:`ProcessPool` (pipeline-neighbor channels
    only), one parameter/gradient shared block per rank, and the
    translation of crash faults into real SIGKILLs.  The division of
    labor that keeps numerics bit-identical to the cooperative backend:
    the **inter-layer phase** (Algorithm 2) runs in the workers; the
    **data-parallel phase and optimizer** (Algorithm 1's reduction, the
    chunked fp16 all-reduce draw order, the loss-scale update) stay in
    the parent, running the exact same code either way.
    """

    def __init__(self, trainer, *,
                 ring_capacity: Optional[int] = None,
                 tick_s: float = DEFAULT_TICK_S,
                 detect_timeout_s: float = DEFAULT_DETECT_TIMEOUT_S,
                 hang_timeout_s: float = DEFAULT_HANG_TIMEOUT_S,
                 trace_dir: Optional[str] = None):
        self.trainer = trainer
        grid = trainer.grid
        channels = []
        for rank in range(grid.world_size):
            nxt = grid.next_in_pipeline(rank)
            if nxt is not None and grid.is_tp_lead(rank):
                # Only leads pipeline activations; followers never touch
                # the inter-layer channels.
                channels.append((rank, nxt))
                channels.append((nxt, rank))
            if grid.is_tp_lead(rank):
                for peer in grid.tp_peers(rank):
                    channels.append((rank, peer))
                    channels.append((peer, rank))
        if ring_capacity is None:
            # Size for several in-flight boundary activations: the largest
            # payload is a (microbatch, seq, hidden) fp32 tensor.
            frame = (4 * trainer.microbatch_size * trainer.cfg.seq_len
                     * trainer.cfg.hidden + 4096)
            if grid.g_intra > 1:
                # TP weight messages carry every shard a peer lacks —
                # bounded by a full stage's parameter block.
                stage_bytes = max(
                    (4 * sum(p.size for p in st.parameters())
                     for st in trainer.stages.values()), default=0)
                frame = max(frame, stage_bytes + 4096)
            ring_capacity = max(1 << 16, 4 * frame)
        tracing = trainer.tracer is not None and trainer.tracer.enabled
        self.pool = ProcessPool(
            grid.world_size, channels=channels or None,
            ring_capacity=ring_capacity, tick_s=tick_s,
            detect_timeout_s=detect_timeout_s,
            hang_timeout_s=hang_timeout_s,
            trace_origin=trainer.tracer._origin if tracing else None,
            trace_dir=trace_dir)
        #: set by the resilience layer to inject (crash) faults
        self.injector = None
        self._param_shms: Dict[int, shared_memory.SharedMemory] = {}
        self._closed = False

    # -- parameter blocks --------------------------------------------------
    def _param_block(self, rank: int) -> shared_memory.SharedMemory:
        """The rank's param/grad block: ``[params fp32 | grads fp32]``."""
        numel = sum(p.size for p in self.trainer.stages[rank].parameters())
        nbytes = 2 * 4 * numel
        shm = self._param_shms.get(rank)
        if shm is None or shm.size < nbytes:
            if shm is not None:
                shm.close()
                shm.unlink()
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._param_shms[rank] = shm
        return shm

    # -- fault translation -------------------------------------------------
    def _crash_schedule(self) -> Dict[int, int]:
        """Consume this step's unspent crash faults: rank -> kill-after-N-
        receives.  Channel faults need the cooperative scheduler's virtual
        clock and are rejected here."""
        if self.injector is None:
            return {}
        if self.injector.plan.channel_faults():
            raise NotImplementedError(
                "the process backend injects real crashes (SIGKILL) only; "
                "drop/delay/degrade/straggler faults need the cooperative "
                "backend's virtual clock")
        schedule: Dict[int, int] = {}
        for f in self.injector.plan.crashes(self.injector.step):
            key = ("crash", f.rank, f.step, f.tick)
            if key in self.injector.spent:
                continue
            self.injector.spent.add(key)
            self.injector.injected.append(
                (f.tick, f"crash rank {f.rank} (SIGKILL)"))
            schedule[f.rank] = f.tick
        return schedule

    # -- the batch ---------------------------------------------------------
    def run_batch(self, groups, total_mb: int) -> int:
        """Run the inter-layer phase of one batch across the workers.

        Returns the number of point-to-point messages exchanged.  Raises
        :class:`RankFailure` on real worker death (injected or genuine);
        the pool is settled and respawned before the exception leaves, so
        the resilience layer's rollback-replay needs no backend-specific
        code.
        """
        trainer = self.trainer
        grid = trainer.grid
        self.pool.start()
        crash_after = self._crash_schedule()
        scale = trainer.scaler.scale if trainer.precision == "mixed" else 1.0

        from .checkpointing import _dropout_modules
        for rank in range(grid.world_size):
            if not grid.is_tp_lead(rank):
                _i, j, _t = grid.coord3_of(rank)
                self.pool.submit(rank, _tp_follower_task, {
                    "grid": grid,
                    "total_microbatches": len(groups[j]),
                    "kill_after": crash_after.get(rank),
                })
                continue
            stage = trainer.stages[rank]
            params = stage.parameters()
            numel = sum(p.size for p in params)
            shm = self._param_block(rank)
            flat = np.ndarray((2 * numel,), dtype=np.float32,
                              buffer=shm.buf)
            offset = 0
            for p in params:
                flat[offset:offset + p.size] = p.data.reshape(-1)
                offset += p.size
            _i, j = grid.coord_of(rank)
            payload = {
                "cfg": trainer.cfg,
                "grid": grid,
                "checkpoint_activations": trainer.checkpoint_activations,
                "param_shm": shm.name,
                "microbatches": groups[j],
                "total_microbatches": total_mb,
                "pipeline_limit": trainer.pipeline_limit,
                "loss_scale": scale,
                "rng_states": [m.rng.bit_generator.state
                               for m in _dropout_modules(stage)],
                "kill_after": crash_after.get(rank),
            }
            self.pool.submit(rank, _train_step_task, payload)

        replies = self.pool.gather(list(range(grid.world_size)))

        # Crash faults that never fired in-flight (scheduled past the
        # rank's last receive) kill their worker at the end-of-batch
        # barrier — same semantics as the cooperative backend.
        barrier_dead = sorted(r for r in crash_after if r in replies
                              and replies[r][0] == "ok")
        if barrier_dead:
            for r in barrier_dead:
                self.pool.kill(r)
            self.pool._settle_failure(set())
            raise RankFailure(
                f"rank(s) {barrier_dead} died during the batch (SIGKILL at "
                f"the end-of-batch barrier)",
                dead=barrier_dead,
                detected_at=int(sum(self.pool.state.recvs(r)
                                    for r in range(grid.world_size))),
                crashed_at={r: int(self.pool.state.recvs(r))
                            for r in barrier_dead})

        messages = self._apply_replies(replies)
        orphans = self.pool.drain_rings()
        if orphans:
            raise BaseRankTransport._orphan_error(orphans)
        return messages

    def _apply_replies(self, replies: Dict[int, Tuple]) -> int:
        from ..perf.counters import counters as _counters
        from .checkpointing import _dropout_modules
        trainer = self.trainer
        messages = 0
        errors: List[str] = []
        for rank in sorted(replies):
            status, payload, events, spans, sent = replies[rank]
            messages += sent
            for ev in events:
                if ev[0] == "collective":
                    _kind, src, op, key, nbytes = ev
                    if trainer.recorder is not None:
                        trainer.recorder.record_collective(src, op, key=key)
                    if _counters.enabled:
                        kind = "allgather" if op == "tp_allgather" \
                            else "reduce_scatter"
                        _counters.bump(f"tp.{kind}")
                        _counters.bump(f"tp.{kind}_bytes", nbytes)
                elif trainer.recorder is not None:
                    if ev[0] == "send":
                        trainer.recorder.record_send(*ev[1:])
                    elif ev[0] == "recv":
                        trainer.recorder.record_recv(*ev[1:])
            if trainer.tracer is not None and trainer.tracer.enabled:
                trainer.tracer.spans.extend(spans)
            if status == "error":
                errors.append(f"rank {rank}:\n{payload}")
                continue
            if status != "ok":  # pragma: no cover - defensive
                errors.append(f"rank {rank}: unexpected status {status!r}")
                continue
            if payload.get("follower"):
                continue  # followers hold no stage; events already merged
            if payload["inflight"]:
                errors.append(
                    f"rank {rank} finished with {payload['inflight']} "
                    f"microbatches in flight")
                continue
            stage = trainer.stages[rank]
            shm = self._param_shms[rank]
            params = stage.parameters()
            numel = sum(p.size for p in params)
            flat = np.ndarray((2 * numel,), dtype=np.float32,
                              buffer=shm.buf)
            offset = numel
            for p, has_grad in zip(params, payload["grad_mask"]):
                if has_grad:
                    grad = flat[offset:offset + p.size] \
                        .reshape(p.data.shape).copy()
                    if p.grad is None:
                        p.grad = grad
                    else:
                        np.copyto(p.grad, grad)
                else:
                    p.grad = None
                offset += p.size
            stage.microbatch_losses.clear()
            stage.microbatch_losses.update(payload["losses"])
            for m, st in zip(_dropout_modules(stage),
                             payload["rng_states"]):
                m.rng.bit_generator.state = st
        if errors:
            raise RuntimeError(
                "worker process(es) raised:\n" + "\n".join(errors))
        return messages

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.close()
        for shm in self._param_shms.values():
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        self._param_shms.clear()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
