"""Bucketed CPU-offload optimizer — the functional twin of Section V-B.

The paper's memory optimization keeps only the half-precision parameters and
gradients on the GPU; the fp32 master weights and the Adam state vectors
live in CPU memory and are streamed through the GPU in fixed-size *buckets*
(``bsize`` parameters at a time), reusing one set of device buffers.

This class implements that dataflow with real numerics over a flat
parameter space:

* ``host_master`` / ``host_exp_avg`` / ``host_exp_avg_sq`` — the CPU-resident
  fp32 arrays (``4 phi`` + ``8 phi`` bytes);
* ``device_half`` — the fp16 weights that stay on the GPU (``2 phi``);
* per-step device working set: one fp32 master bucket + two fp32 state
  buckets + one fp32 descaled-gradient bucket = ``16 * bsize`` bytes,
  matching the paper's accounting (and its ``4 phi + 16 bsize`` total).

Because Adam is elementwise, the bucketed update is numerically identical
to a monolithic :class:`~repro.nn.mixed_precision.MixedPrecisionAdamW`
step — a property the tests assert directly.  Byte counters for
host<->device traffic let the performance model and the Fig. 6/8
experiments share one source of truth.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..nn import LossScaler
from ..nn.optim import adam_step
from ..nn.tensor import Tensor

__all__ = ["BucketedOffloadAdamW"]


class BucketedOffloadAdamW:
    """AdamW with CPU-offloaded state applied in ``bsize``-parameter buckets."""

    def __init__(self, params: Iterable[Tensor], bucket_size: int,
                 lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01,
                 scaler: Optional[LossScaler] = None):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer over an empty parameter list")
        if bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        self.bucket_size = bucket_size
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.scaler = scaler or LossScaler(dynamic=False, init_scale=1.0)

        # Flat layout: parameter p occupies [offsets[p], offsets[p+1]).
        sizes = [p.size for p in self.params]
        self.offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self.numel = int(self.offsets[-1])

        # "CPU memory": fp32 master weights + Adam state.
        self.host_master = np.concatenate(
            [p.data.reshape(-1).astype(np.float32) for p in self.params]
        )
        self.host_exp_avg = np.zeros(self.numel, dtype=np.float32)
        self.host_exp_avg_sq = np.zeros(self.numel, dtype=np.float32)
        # "GPU memory": the fp16 weights that stay resident.
        self.device_half = self.host_master.astype(np.float16)

        self.steps = 0
        self.skipped_steps = 0
        #: cumulative host<->device traffic, bytes
        self.h2d_bytes = 0
        self.d2h_bytes = 0

    # -- bookkeeping ------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return -(-self.numel // self.bucket_size)

    def device_optimizer_bytes(self) -> int:
        """Peak *optimizer-phase* device working set: 16 * bsize bytes
        (fp32 master + exp_avg + exp_avg_sq buckets and the descale buffer,
        4 bytes each) — paper Section V-B."""
        b = min(self.bucket_size, self.numel)
        return 16 * b

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _flat_grads_half(self) -> np.ndarray:
        """Collect the fp16 gradients as one flat device array."""
        parts = []
        for p in self.params:
            if p.grad is None:
                parts.append(np.zeros(p.size, dtype=np.float16))
            else:
                parts.append(p.grad.reshape(-1).astype(np.float16))
        return np.concatenate(parts)

    def _scatter_master_to_params(self) -> None:
        for p, a, b in zip(self.params, self.offsets, self.offsets[1:]):
            p.data[...] = self.host_master[a:b].reshape(p.data.shape)

    # -- the step -----------------------------------------------------------
    def step(self, half_grads: Optional[np.ndarray] = None) -> bool:
        """Apply one bucketed update.

        ``half_grads``: flat fp16 gradient array (defaults to gathering the
        ``.grad`` of the wrapped parameters).  Returns False when an
        overflow was detected (step skipped, loss scale reduced).
        """
        if half_grads is None:
            half_grads = self._flat_grads_half()
        if half_grads.shape != (self.numel,):
            raise ValueError(
                f"expected flat gradient of {self.numel} elements, got "
                f"{half_grads.shape}"
            )
        # np.isfinite handles fp16 natively — no fp32 copy of the flat
        # gradient just to run the overflow check.
        if not np.isfinite(half_grads).all():
            self.scaler.update(found_overflow=True)
            self.skipped_steps += 1
            return False
        self.steps += 1
        inv_scale = 1.0 / self.scaler.scale
        bsize = self.bucket_size
        for start in range(0, self.numel, bsize):
            end = min(start + bsize, self.numel)
            n = end - start
            # Fetch the bucket to the device (master + both state vectors).
            self.h2d_bytes += 12 * n
            master = self.host_master[start:end]
            m = self.host_exp_avg[start:end]
            v = self.host_exp_avg_sq[start:end]
            # Descale gradients into the fp32 scratch buffer (4 * bsize).
            g32 = half_grads[start:end].astype(np.float32) * inv_scale
            adam_step(master, g32, m, v, self.steps, self.lr,
                      self.beta1, self.beta2, self.eps,
                      self.weight_decay, decoupled=True)
            # Offload the updated bucket back to the host.
            self.d2h_bytes += 12 * n
            # Refresh the resident fp16 weights.
            self.device_half[start:end] = master.astype(np.float16)
        self._scatter_master_to_params()
        self.scaler.update(found_overflow=False)
        return True
