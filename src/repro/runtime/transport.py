"""Deterministic in-process rank transport for the functional runtime.

The *functional* runtime executes AxoNN's algorithms with real numerics (the
performance twin lives in :mod:`repro.core` on the discrete-event cluster).
Each simulated GPU is a *rank program*: a Python generator that computes with
NumPy and yields when it needs to receive a message — exactly the structure
of Algorithm 2, whose only blocking point is ``RECEIVE()``.

The scheduler advances rank programs round-robin; a rank blocks only on an
empty inbox.  Sends are non-blocking and delivered instantly in FIFO order
(MPI_Isend semantics: buffered, ordered per sender-receiver pair).  Because
scheduling is round-robin and delivery deterministic, an entire parallel
training run is bit-reproducible — which the serial-vs-parallel equivalence
tests rely on.

Protocol misuse raises :class:`~repro.analysis.protocol.ProtocolError`:
yielding anything but :data:`RECV`, or (with the default ``strict=True``)
finishing a run with undelivered packets rotting in an inbox.  Deadlock
(every live rank blocked on an empty inbox) raises :class:`DeadlockError`
with a wait-for-graph diagnosis: which rank waits on whom, plus the nearest
unmatched sends.  Either way, all still-suspended generators are closed so a
failing run never leaks rank programs mid-``finally``.

Pass ``recorder=``\\ (a :class:`~repro.analysis.protocol.TraceRecorder`) to
log every send and delivery for post-hoc verification with
:func:`~repro.analysis.protocol.verify_trace`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Set

from ..analysis.protocol import ProtocolError, TraceRecorder, describe_deadlock
from ..obs import RuntimeTracer

__all__ = ["Packet", "RankTransport", "DeadlockError", "ProtocolError", "RECV"]

#: sentinel yielded by a rank program to request the next inbox message
RECV = "recv"


class DeadlockError(RuntimeError):
    """All unfinished rank programs are blocked on empty inboxes.

    Attributes
    ----------
    stuck : list of rank ids blocked at deadlock time
    wait_for : dict mapping each stuck rank to the ranks it historically
        received from (its wait-for edges); empty means the rank never
        received anything, so its expected sender is unknown
    orphans : packets sitting undelivered in inboxes at deadlock time —
        the *nearest unmatched sends*, usually the misrouted packet that
        explains the hang
    """

    def __init__(self, message: str, stuck: Optional[List[int]] = None,
                 wait_for: Optional[Dict[int, List[int]]] = None,
                 orphans: Optional[List["Packet"]] = None) -> None:
        super().__init__(message)
        self.stuck = list(stuck or [])
        self.wait_for = dict(wait_for or {})
        self.orphans = list(orphans or [])


@dataclass(frozen=True)
class Packet:
    """One delivered message."""

    src: int
    dst: int
    tag: str
    microbatch: int
    data: Any = field(compare=False, default=None)


class RankTransport:
    """Per-rank FIFO inboxes + the cooperative scheduler.

    ``recorder`` (optional) receives every send and every delivery for
    post-hoc protocol verification.  ``strict`` (default) makes ``run()``
    raise :class:`ProtocolError` if packets remain undelivered when all
    programs have finished — the static signature of a forgotten receive.
    """

    def __init__(self, n_ranks: int, *,
                 recorder: Optional[TraceRecorder] = None,
                 tracer: Optional[RuntimeTracer] = None,
                 strict: bool = True):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.inboxes: List[Deque[Packet]] = [deque() for _ in range(n_ranks)]
        self.messages_sent = 0
        self.recorder = recorder
        #: optional observability tracer; every delivered packet becomes a
        #: "p2p" span from send time to consumption time on the sender's
        #: ``net`` track
        self.tracer = tracer
        self.strict = strict
        # historical senders into each rank: the wait-for edges used by the
        # deadlock diagnosis (a blocked rank most plausibly waits on whoever
        # has been feeding it).
        self._peers_in: List[Set[int]] = [set() for _ in range(n_ranks)]
        self._send_times: Dict[int, float] = {}

    def send(self, src: int, dst: int, tag: str, microbatch: int,
             data: Any = None) -> None:
        """Non-blocking buffered send (MPI_Isend)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError(f"rank {src} sending to itself")
        pkt = Packet(src, dst, tag, microbatch, data)
        self.inboxes[dst].append(pkt)
        self.messages_sent += 1
        self._peers_in[dst].add(src)
        if self.recorder is not None:
            self.recorder.record_send(src, dst, tag, microbatch)
        if self.tracer is not None and self.tracer.enabled:
            self._send_times[id(pkt)] = self.tracer.now()

    def _trace_delivery(self, packet: Packet) -> None:
        """Record the send-to-consumption interval as a p2p span."""
        tracer = self.tracer
        start = self._send_times.pop(id(packet), None)
        if tracer is None or not tracer.enabled or start is None:
            return
        data = packet.data
        nbytes = int(getattr(data, "nbytes", 0)) if data is not None else None
        tracer.record(packet.src, "net", packet.tag, start, tracer.now(),
                      category="p2p", microbatch=packet.microbatch,
                      nbytes=nbytes, src=packet.src, dst=packet.dst)

    def pending(self, rank: int) -> int:
        self._check_rank(rank)
        return len(self.inboxes[rank])

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")

    def _orphans(self) -> List[Packet]:
        return [pkt for inbox in self.inboxes for pkt in inbox]

    @staticmethod
    def _close_live(live: Dict[int, Generator]) -> None:
        """Close still-suspended generators so error exits don't leak them."""
        for gen in live.values():
            try:
                gen.close()
            except Exception:
                pass  # a failing finally must not mask the primary error

    # -- scheduler ---------------------------------------------------------
    def run(self, programs: Dict[int, Generator]) -> None:
        """Drive rank programs to completion.

        ``programs`` maps rank id -> generator.  The protocol: a program
        yields :data:`RECV` to wait for its next message; the yield
        expression evaluates to the :class:`Packet`.  Any other yielded
        value raises :class:`ProtocolError`.  On any error or deadlock,
        every still-suspended generator is closed before the exception
        propagates.
        """
        for rank in programs:
            self._check_rank(rank)
        live: Dict[int, Generator] = dict(programs)
        try:
            self._run_loop(live)
        except BaseException:
            self._close_live(live)
            raise
        if self.strict:
            self._raise_on_orphans()

    def _run_loop(self, live: Dict[int, Generator]) -> None:
        # waiting[rank] is True when the rank has yielded RECV and its inbox
        # was empty at last visit.
        started: Dict[int, bool] = {r: False for r in live}
        waiting: Dict[int, bool] = {r: False for r in live}

        while live:
            progressed = False
            for rank in sorted(live):
                gen = live.get(rank)
                if gen is None:
                    continue
                while True:
                    if not started[rank]:
                        try:
                            request = next(gen)
                            started[rank] = True
                        except StopIteration:
                            del live[rank]
                            progressed = True
                            break
                    elif waiting[rank]:
                        if not self.inboxes[rank]:
                            break  # still blocked
                        packet = self.inboxes[rank].popleft()
                        waiting[rank] = False
                        if self.recorder is not None:
                            self.recorder.record_recv(
                                rank, packet.src, packet.tag,
                                packet.microbatch)
                        if self.tracer is not None:
                            self._trace_delivery(packet)
                        try:
                            request = gen.send(packet)
                        except StopIteration:
                            del live[rank]
                            progressed = True
                            break
                    else:
                        break
                    if request != RECV:
                        raise ProtocolError(
                            f"rank {rank} yielded {request!r}; rank programs "
                            f"may only yield RECV"
                        )
                    waiting[rank] = True
                    progressed = True
                    # Loop again: the message may already be waiting.
            if live and not progressed:
                stuck = sorted(live)
                wait_for = {r: sorted(self._peers_in[r]) for r in stuck}
                orphans = self._orphans()
                raise DeadlockError(
                    describe_deadlock(stuck, wait_for, orphans,
                                      self.messages_sent),
                    stuck=stuck, wait_for=wait_for, orphans=orphans,
                )

    def _raise_on_orphans(self) -> None:
        orphans = self._orphans()
        if not orphans:
            return
        listing = "\n  ".join(
            f"{p.src} -> {p.dst} tag={p.tag!r} microbatch={p.microbatch}"
            for p in orphans[:20])
        more = f"\n  ... and {len(orphans) - 20} more" if len(orphans) > 20 \
            else ""
        raise ProtocolError(
            f"run finished with {len(orphans)} undelivered packet(s) left "
            f"in inboxes (orphan sends — a receive is missing):\n  "
            f"{listing}{more}\n"
            f"Pass strict=False to RankTransport to allow this."
        )
