"""Deterministic in-process rank transport for the functional runtime.

The *functional* runtime executes AxoNN's algorithms with real numerics (the
performance twin lives in :mod:`repro.core` on the discrete-event cluster).
Each simulated GPU is a *rank program*: a Python generator that computes with
NumPy and yields when it needs to receive a message — exactly the structure
of Algorithm 2, whose only blocking point is ``RECEIVE()``.

The scheduler advances rank programs round-robin; a rank blocks only on an
empty inbox.  Sends are non-blocking and delivered instantly in FIFO order
(MPI_Isend semantics: buffered, ordered per sender-receiver pair).  Because
scheduling is round-robin and delivery deterministic, an entire parallel
training run is bit-reproducible — which the serial-vs-parallel equivalence
tests rely on.

Deadlock (every live rank blocked on an empty inbox) raises
:class:`DeadlockError` listing the stuck ranks — turning scheduler bugs into
loud failures instead of hangs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional

__all__ = ["Packet", "RankTransport", "DeadlockError", "RECV"]

#: sentinel yielded by a rank program to request the next inbox message
RECV = "recv"


class DeadlockError(RuntimeError):
    """All unfinished rank programs are blocked on empty inboxes."""


@dataclass(frozen=True)
class Packet:
    """One delivered message."""

    src: int
    dst: int
    tag: str
    microbatch: int
    data: Any = field(compare=False, default=None)


class RankTransport:
    """Per-rank FIFO inboxes + the cooperative scheduler."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.inboxes: List[Deque[Packet]] = [deque() for _ in range(n_ranks)]
        self.messages_sent = 0

    def send(self, src: int, dst: int, tag: str, microbatch: int,
             data: Any = None) -> None:
        """Non-blocking buffered send (MPI_Isend)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError(f"rank {src} sending to itself")
        self.inboxes[dst].append(Packet(src, dst, tag, microbatch, data))
        self.messages_sent += 1

    def pending(self, rank: int) -> int:
        self._check_rank(rank)
        return len(self.inboxes[rank])

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")

    # -- scheduler ---------------------------------------------------------
    def run(self, programs: Dict[int, Generator]) -> None:
        """Drive rank programs to completion.

        ``programs`` maps rank id -> generator.  The protocol: a program
        yields :data:`RECV` to wait for its next message; the yield
        expression evaluates to the :class:`Packet`.  Any other yielded
        value is a protocol error.
        """
        for rank in programs:
            self._check_rank(rank)
        live: Dict[int, Generator] = dict(programs)
        # waiting[rank] is True when the rank has yielded RECV and its inbox
        # was empty at last visit.
        started: Dict[int, bool] = {r: False for r in live}
        waiting: Dict[int, bool] = {r: False for r in live}

        while live:
            progressed = False
            for rank in sorted(live):
                gen = live.get(rank)
                if gen is None:
                    continue
                while True:
                    if not started[rank]:
                        try:
                            request = next(gen)
                            started[rank] = True
                        except StopIteration:
                            del live[rank]
                            progressed = True
                            break
                    elif waiting[rank]:
                        if not self.inboxes[rank]:
                            break  # still blocked
                        packet = self.inboxes[rank].popleft()
                        waiting[rank] = False
                        try:
                            request = gen.send(packet)
                        except StopIteration:
                            del live[rank]
                            progressed = True
                            break
                    else:
                        break
                    if request != RECV:
                        raise RuntimeError(
                            f"rank {rank} yielded {request!r}; rank programs "
                            f"may only yield RECV"
                        )
                    waiting[rank] = True
                    progressed = True
                    # Loop again: the message may already be waiting.
            if live and not progressed:
                stuck = sorted(live)
                raise DeadlockError(
                    f"ranks {stuck} are all blocked on empty inboxes "
                    f"(messages sent so far: {self.messages_sent})"
                )
