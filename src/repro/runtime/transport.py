"""Deterministic in-process rank transport for the functional runtime.

The *functional* runtime executes AxoNN's algorithms with real numerics (the
performance twin lives in :mod:`repro.core` on the discrete-event cluster).
Each simulated GPU is a *rank program*: a Python generator that computes with
NumPy and yields when it needs to receive a message — exactly the structure
of Algorithm 2, whose only blocking point is ``RECEIVE()``.

The scheduler advances rank programs round-robin; a rank blocks only on an
empty inbox.  Sends are non-blocking and delivered instantly in FIFO order
(MPI_Isend semantics: buffered, ordered per sender-receiver pair).  Because
scheduling is round-robin and delivery deterministic, an entire parallel
training run is bit-reproducible — which the serial-vs-parallel equivalence
tests rely on.

Protocol misuse raises :class:`~repro.analysis.protocol.ProtocolError`:
yielding anything but :data:`RECV` / :func:`recv_within`, or (with the
default ``strict=True``) finishing a run with undelivered packets rotting
in an inbox.  Deadlock (every live rank blocked on an empty inbox) raises
:class:`DeadlockError` with a wait-for-graph diagnosis: which rank waits on
whom, plus the nearest unmatched sends.  Either way, all still-suspended
generators are closed so a failing run never leaks rank programs
mid-``finally``.

Faults (:mod:`repro.resilience`)
--------------------------------
Pass ``injector=`` (a :class:`~repro.resilience.FaultInjector`) to subject
the run to a deterministic :class:`~repro.resilience.FaultPlan`:

* *time* is the scheduler-sweep counter :attr:`RankTransport.tick`;
* a **crash** kills a rank's generator mid-flight; its inbox is discarded
  and later sends to it vanish (the network cannot address a dead NIC);
* **drop/delay/degrade/straggler** faults act on individual sends; a
  dropped send is retransmitted with exponential backoff when a
  ``retry=`` (:class:`~repro.resilience.RetryPolicy`) is given;
* every live rank *heartbeats* once per sweep; a rank that stops beating
  (it crashed) is declared failed ``detect_timeout`` ticks later and the
  run raises :class:`RankFailure` naming the dead ranks — the signal the
  recovery coordinator (:class:`~repro.resilience.ResilientTrainer`)
  turns into a rollback-and-respawn.

A rank program that waits on a channel a plan can sever should use a
*timed receive* — ``pkt = yield recv_within(ticks)`` — and handle
:class:`TimeoutError` / :class:`RankFailure` (lint rule REP006 enforces
the handler).

Pass ``recorder=``\\ (a :class:`~repro.analysis.protocol.TraceRecorder`) to
log every send and delivery for post-hoc verification with
:func:`~repro.analysis.protocol.verify_trace`.
"""

from __future__ import annotations

import abc
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Deque, Dict, Generator, List, Optional, Set, Tuple,
                    TYPE_CHECKING)

from ..analysis.protocol import ProtocolError, TraceRecorder, describe_deadlock
from ..obs import RuntimeTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (resilience
    # imports runtime); the injector/retry objects are duck-typed here
    from ..resilience.faults import FaultInjector, RetryPolicy

__all__ = ["BaseRankTransport", "Packet", "RankTransport", "DeadlockError",
           "ProtocolError", "RankFailure", "RECV", "TimedRecv", "recv_within"]

#: sentinel yielded by a rank program to request the next inbox message
RECV = "recv"

#: sweeps a silent (crashed) rank survives before being declared failed
DEFAULT_DETECT_TIMEOUT = 25

#: injector verdict meaning "lose this packet" (mirrors resilience.faults)
_DROP = "drop"


@dataclass(frozen=True)
class TimedRecv:
    """A receive with a deadline: ``yield recv_within(n)`` resumes with the
    next packet, or raises :class:`TimeoutError` inside the rank program
    after ``n`` scheduler sweeps with an empty inbox."""

    timeout: int

    def __post_init__(self):
        if self.timeout < 1:
            raise ValueError("recv timeout must be >= 1 tick")


def recv_within(ticks: int) -> TimedRecv:
    """A timed receive request for ``yield`` (see :class:`TimedRecv`)."""
    return TimedRecv(ticks)


class DeadlockError(RuntimeError):
    """All unfinished rank programs are blocked on empty inboxes.

    Attributes
    ----------
    stuck : list of rank ids blocked at deadlock time
    wait_for : dict mapping each stuck rank to the ranks it historically
        received from (its wait-for edges); empty means the rank never
        received anything, so its expected sender is unknown
    orphans : packets sitting undelivered in inboxes at deadlock time —
        the *nearest unmatched sends*, usually the misrouted packet that
        explains the hang
    """

    def __init__(self, message: str, stuck: Optional[List[int]] = None,
                 wait_for: Optional[Dict[int, List[int]]] = None,
                 orphans: Optional[List["Packet"]] = None) -> None:
        super().__init__(message)
        self.stuck = list(stuck or [])
        self.wait_for = dict(wait_for or {})
        self.orphans = list(orphans or [])


class RankFailure(RuntimeError):
    """Heartbeat timeout: one or more ranks were declared dead.

    Raised by :meth:`RankTransport.run` after a crashed rank has been
    silent for ``detect_timeout`` scheduler sweeps.  The recovery
    coordinator catches this, rolls every rank back to the latest
    snapshot, respawns the dead ranks and retries the batch.

    Attributes
    ----------
    dead : sorted rank ids declared failed
    detected_at : the scheduler tick of the declaration
    crashed_at : dict rank -> tick of its last observed heartbeat
    """

    def __init__(self, message: str, dead: Optional[List[int]] = None,
                 detected_at: int = 0,
                 crashed_at: Optional[Dict[int, int]] = None) -> None:
        super().__init__(message)
        self.dead = sorted(dead or [])
        self.detected_at = detected_at
        self.crashed_at = dict(crashed_at or {})


@dataclass(frozen=True)
class Packet:
    """One delivered message.

    ``seq`` is a transport-assigned monotonic send sequence number (-1
    when the packet was constructed outside a transport, e.g. in tests).
    It keys per-packet bookkeeping such as send timestamps — keying by
    ``id(pkt)`` would collide when the allocator reuses addresses and
    leak when packets are dropped.
    """

    src: int
    dst: int
    tag: str
    microbatch: int
    data: Any = field(compare=False, default=None)
    seq: int = field(compare=False, repr=False, default=-1)


class BaseRankTransport(abc.ABC):
    """The transport contract every execution backend implements.

    A transport owns ``n_ranks`` message endpoints and drives *rank
    programs* — generators that ``yield RECV`` (or a
    :func:`recv_within` request) and are resumed with the next
    :class:`Packet`.  The contract, shared by the cooperative in-process
    scheduler (:class:`RankTransport`) and the multiprocessing backend
    (:class:`~repro.runtime.parallel.ProcessTransport`):

    * :meth:`send` is non-blocking and buffered (MPI_Isend semantics),
      FIFO per ``(src, dst)`` channel;
    * ``yield RECV`` blocks the program on its next message; ``yield
      recv_within(n)`` raises :class:`TimeoutError` *inside* the program
      after ``n`` transport ticks without one;
    * every live rank heartbeats once per scheduler sweep (cooperative)
      or receive-poll (process); a rank that stops beating — or whose OS
      process dies — raises :class:`RankFailure` naming the dead ranks;
    * with ``strict=True`` (default) a run that completes with
      undelivered packets raises :class:`ProtocolError` (orphan sends);
    * any yield other than :data:`RECV` / :class:`TimedRecv` raises
      :class:`ProtocolError`;
    * pass ``recorder=`` to log every send/delivery for the protocol
      verifier; pass ``tracer=`` to emit p2p ObsSpans.

    Implementations fill in :meth:`send`, :meth:`run` and
    :meth:`pending`; the base class carries the shared bookkeeping
    surface (message/sequence counters, dead/finished sets, rank-range
    checks and the orphan report).
    """

    def __init__(self, n_ranks: int, *,
                 recorder: Optional[TraceRecorder] = None,
                 tracer: Optional[RuntimeTracer] = None,
                 strict: bool = True):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.recorder = recorder
        self.tracer = tracer
        self.strict = strict
        self.messages_sent = 0
        #: ranks that died (injected crash or real process death)
        self.dead: Set[int] = set()
        #: ranks whose program returned normally
        self.finished: Set[int] = set()
        #: sends that could never be delivered
        self.lost_packets: List[Packet] = []
        self._send_seq = 0

    def _next_send_seq(self) -> int:
        seq = self._send_seq
        self._send_seq += 1
        return seq

    @abc.abstractmethod
    def send(self, src: int, dst: int, tag: str, microbatch: int,
             data: Any = None) -> None:
        """Non-blocking buffered send (MPI_Isend semantics)."""

    @abc.abstractmethod
    def run(self, programs) -> Any:
        """Drive rank programs to completion (see class docstring)."""

    @abc.abstractmethod
    def pending(self, rank: int) -> int:
        """Messages currently buffered for ``rank``."""

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")

    @staticmethod
    def _orphan_error(orphans: List[Packet]) -> ProtocolError:
        listing = "\n  ".join(
            f"{p.src} -> {p.dst} tag={p.tag!r} microbatch={p.microbatch}"
            for p in orphans[:20])
        more = f"\n  ... and {len(orphans) - 20} more" if len(orphans) > 20 \
            else ""
        return ProtocolError(
            f"run finished with {len(orphans)} undelivered packet(s) left "
            f"in inboxes (orphan sends — a receive is missing):\n  "
            f"{listing}{more}\n"
            f"Pass strict=False to the transport to allow this."
        )


class RankTransport(BaseRankTransport):
    """Per-rank FIFO inboxes + the cooperative scheduler.

    ``recorder`` (optional) receives every send and every delivery for
    post-hoc protocol verification.  ``strict`` (default) makes ``run()``
    raise :class:`ProtocolError` if packets remain undelivered when all
    programs have finished — the static signature of a forgotten receive.
    ``injector``/``retry``/``detect_timeout`` enable the fault layer (see
    the module docstring); without an injector the scheduler behaves
    exactly as the fault-free original.
    """

    def __init__(self, n_ranks: int, *,
                 recorder: Optional[TraceRecorder] = None,
                 tracer: Optional[RuntimeTracer] = None,
                 strict: bool = True,
                 injector: Optional["FaultInjector"] = None,
                 retry: Optional["RetryPolicy"] = None,
                 detect_timeout: int = DEFAULT_DETECT_TIMEOUT):
        if detect_timeout < 1:
            raise ValueError("detect_timeout must be >= 1 tick")
        super().__init__(n_ranks, recorder=recorder, tracer=tracer,
                         strict=strict)
        self.inboxes: List[Deque[Packet]] = [deque() for _ in range(n_ranks)]
        self.injector = injector
        self.retry = retry
        self.detect_timeout = detect_timeout
        #: scheduler-sweep counter — the fault layer's clock
        self.tick = 0
        # heartbeat bookkeeping: last sweep each rank was seen alive
        self._last_beat: Dict[int, int] = {}
        # deferred deliveries: heap of (due_tick, seq, Packet)
        self._delayed: List[Tuple[int, int, Packet]] = []
        # pending retransmissions: heap of (due_tick, seq, Packet, attempt)
        self._retries: List[Tuple[int, int, Packet, int]] = []
        self._defer_seq = 0
        # historical senders into each rank: the wait-for edges used by the
        # deadlock diagnosis (a blocked rank most plausibly waits on whoever
        # has been feeding it).
        self._peers_in: List[Set[int]] = [set() for _ in range(n_ranks)]
        # send-time of each in-flight packet, keyed by its monotonic send
        # sequence number (purged on delivery AND on every loss path, so a
        # lossy traced run cannot grow this dict unboundedly)
        self._send_times: Dict[int, float] = {}

    # -- sending ----------------------------------------------------------
    def send(self, src: int, dst: int, tag: str, microbatch: int,
             data: Any = None) -> None:
        """Non-blocking buffered send (MPI_Isend).

        With an ``injector`` the send is subject to the fault plan: it may
        be dropped (then retransmitted per the ``retry`` policy), delayed,
        or — when the destination is dead — silently discarded.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError(f"rank {src} sending to itself")
        pkt = Packet(src, dst, tag, microbatch, data,
                     seq=self._next_send_seq())
        self.messages_sent += 1
        if self.recorder is not None:
            self.recorder.record_send(src, dst, tag, microbatch)
        if self.tracer is not None and self.tracer.enabled:
            self._send_times[pkt.seq] = self.tracer.now()
        self._attempt_send(pkt, attempt=0)

    def _attempt_send(self, pkt: Packet, attempt: int) -> None:
        """Run one (re)transmission attempt through the fault layer."""
        if pkt.dst in self.dead:
            # The network cannot address a dead NIC; the message vanishes.
            self._fault_span(pkt.src, f"send-to-dead:{pkt.tag}",
                             dst=pkt.dst)
            self._lose(pkt)
            return
        verdict: object = None
        if self.injector is not None:
            verdict = self.injector.on_send(pkt.src, pkt.dst, pkt.tag,
                                            self.tick)
        if verdict == _DROP:
            if self.retry is not None and attempt < self.retry.max_retries:
                due = self.tick + self.retry.backoff(attempt)
                self._fault_span(pkt.src, f"retry{attempt}:{pkt.tag}",
                                 dst=pkt.dst, due=due)
                heapq.heappush(self._retries,
                               (due, self._next_seq(), pkt, attempt + 1))
            else:
                self._fault_span(pkt.src, f"lost:{pkt.tag}", dst=pkt.dst)
                self._lose(pkt)
            return
        if isinstance(verdict, int) and verdict > 0:
            heapq.heappush(self._delayed,
                           (self.tick + verdict, self._next_seq(), pkt))
            return
        self._enqueue(pkt)

    def _enqueue(self, pkt: Packet) -> None:
        self.inboxes[pkt.dst].append(pkt)
        self._peers_in[pkt.dst].add(pkt.src)

    def _lose(self, pkt: Packet) -> None:
        """A packet that will never be delivered: drop its trace entry."""
        self.lost_packets.append(pkt)
        self._send_times.pop(pkt.seq, None)

    def _next_seq(self) -> int:
        self._defer_seq += 1
        return self._defer_seq

    def _fault_span(self, rank: int, name: str, **meta: object) -> None:
        """Zero-duration marker span on the rank's ``fault`` track."""
        if self.tracer is None or not self.tracer.enabled:
            return
        now = self.tracer.now()
        self.tracer.record(rank, "fault", name, now, now, category="fault",
                           tick=self.tick, **meta)

    def _trace_delivery(self, packet: Packet) -> None:
        """Record the send-to-consumption interval as a p2p span."""
        tracer = self.tracer
        start = self._send_times.pop(packet.seq, None)
        if tracer is None or not tracer.enabled or start is None:
            return
        data = packet.data
        nbytes = int(getattr(data, "nbytes", 0)) if data is not None else None
        tracer.record(packet.src, "net", packet.tag, start, tracer.now(),
                      category="p2p", microbatch=packet.microbatch,
                      nbytes=nbytes, src=packet.src, dst=packet.dst)

    def pending(self, rank: int) -> int:
        self._check_rank(rank)
        return len(self.inboxes[rank])

    def _orphans(self) -> List[Packet]:
        return [pkt for inbox in self.inboxes for pkt in inbox]

    @staticmethod
    def _close_live(live: Dict[int, Generator]) -> None:
        """Close still-suspended generators so error exits don't leak them."""
        for gen in live.values():
            try:
                gen.close()
            except Exception:
                pass  # a failing finally must not mask the primary error

    # -- fault-layer sweep hooks -------------------------------------------
    def _kill(self, rank: int, live: Dict[int, Generator]) -> None:
        """Crash ``rank``: close its generator, void its inbox."""
        gen = live.pop(rank, None)
        if gen is not None:
            try:
                gen.close()
            except Exception:
                pass  # a dying rank must not take the scheduler with it
        self.dead.add(rank)
        for pkt in self.inboxes[rank]:
            self._lose(pkt)
        self.inboxes[rank].clear()
        self._fault_span(rank, f"crash-rank{rank}")

    def _begin_sweep(self, live: Dict[int, Generator]) -> None:
        """Inject due crashes; release due delayed/retried packets."""
        if self.injector is not None:
            for fault in self.injector.crashes_due(self.tick):
                if fault.rank in live:
                    self._kill(fault.rank, live)
                elif fault.rank in self.finished:
                    # The rank's program already returned, but the node dies
                    # before the end-of-batch barrier: the batch still fails.
                    self.dead.add(fault.rank)
                    self._fault_span(fault.rank,
                                     f"crash-rank{fault.rank}-post")
        while self._retries and self._retries[0][0] <= self.tick:
            _due, _seq, pkt, attempt = heapq.heappop(self._retries)
            self._attempt_send(pkt, attempt)
        while self._delayed and self._delayed[0][0] <= self.tick:
            _due, _seq, pkt = heapq.heappop(self._delayed)
            if pkt.dst in self.dead:
                self._lose(pkt)
            else:
                self._enqueue(pkt)

    def _suspects_expired(self) -> List[int]:
        """Dead ranks whose silence exceeded the detection timeout."""
        return sorted(
            r for r in self.dead
            if self.tick - self._last_beat.get(r, 0) > self.detect_timeout)

    def _has_future_work(self, deadlines: Dict[int, int]) -> bool:
        """Can advancing the tick alone unblock the run?"""
        return bool(self._delayed or self._retries or deadlines
                    or self.dead)

    # -- scheduler ---------------------------------------------------------
    def run(self, programs: Dict[int, Generator]) -> None:
        """Drive rank programs to completion.

        ``programs`` maps rank id -> generator.  The protocol: a program
        yields :data:`RECV` (or a :func:`recv_within` request) to wait for
        its next message; the yield expression evaluates to the
        :class:`Packet`.  Any other yielded value raises
        :class:`ProtocolError`.  On any error, deadlock, or detected rank
        failure, every still-suspended generator is closed before the
        exception propagates.
        """
        for rank in programs:
            self._check_rank(rank)
        live: Dict[int, Generator] = dict(programs)
        try:
            self._run_loop(live)
        except BaseException:
            self._close_live(live)
            raise
        if self.strict:
            self._raise_on_orphans()

    def _run_loop(self, live: Dict[int, Generator]) -> None:
        # waiting[rank] is True when the rank has yielded RECV and its inbox
        # was empty at last visit; deadlines[rank] is the tick at which a
        # pending timed recv expires.
        started: Dict[int, bool] = {r: False for r in live}
        waiting: Dict[int, bool] = {r: False for r in live}
        deadlines: Dict[int, int] = {}
        for r in live:
            self._last_beat[r] = self.tick

        while live:
            self._begin_sweep(live)
            progressed = self._sweep(live, started, waiting, deadlines)
            # Heartbeats: every rank whose generator still exists is alive,
            # blocked or not.  Crashed ranks fell out of `live` and go
            # silent; normal completions are registered in `finished`.
            for r in live:
                self._last_beat[r] = self.tick
            expired = self._suspects_expired()
            if expired:
                raise RankFailure(
                    f"rank(s) {expired} stopped heartbeating "
                    f"(last beat {[self._last_beat.get(r, 0) for r in expired]}, "
                    f"declared dead at tick {self.tick} after "
                    f"{self.detect_timeout}-tick timeout)",
                    dead=expired, detected_at=self.tick,
                    crashed_at={r: self._last_beat.get(r, 0)
                                for r in expired})
            self.tick += 1
            if live and not progressed:
                if self._has_future_work(deadlines):
                    continue  # pure time advance can still unblock the run
                stuck = sorted(live)
                wait_for = {r: sorted(self._peers_in[r]) for r in stuck}
                orphans = self._orphans()
                raise DeadlockError(
                    describe_deadlock(stuck, wait_for, orphans,
                                      self.messages_sent),
                    stuck=stuck, wait_for=wait_for, orphans=orphans,
                )
        if self.injector is not None:
            # Crash faults scheduled past the batch's last sweep fire at
            # the barrier rather than silently never happening.
            for fault in self.injector.pending_crashes(self.tick):
                self.dead.add(fault.rank)
                self._fault_span(fault.rank,
                                 f"crash-rank{fault.rank}-barrier")
        if self.dead:
            # Every program completed, but a rank died along the way: the
            # end-of-batch barrier (gradient all-reduce) cannot complete.
            dead = sorted(self.dead)
            raise RankFailure(
                f"rank(s) {dead} died during the batch; failure detected "
                f"at the end-of-batch barrier (tick {self.tick})",
                dead=dead, detected_at=self.tick,
                crashed_at={r: self._last_beat.get(r, 0) for r in dead})

    def _sweep(self, live: Dict[int, Generator], started: Dict[int, bool],
               waiting: Dict[int, bool], deadlines: Dict[int, int]) -> bool:
        """One round-robin pass over all live ranks."""
        progressed = False
        for rank in sorted(live):
            gen = live.get(rank)
            if gen is None:
                continue  # killed earlier in this sweep
            while True:
                if not started[rank]:
                    try:
                        request = next(gen)
                        started[rank] = True
                    except StopIteration:
                        self._retire(rank, live)
                        progressed = True
                        break
                elif waiting[rank]:
                    if not self.inboxes[rank]:
                        due = deadlines.get(rank)
                        if due is None or self.tick < due:
                            break  # still blocked
                        # Timed recv expired: deliver the timeout instead.
                        del deadlines[rank]
                        waiting[rank] = False
                        try:
                            request = gen.throw(TimeoutError(
                                f"rank {rank} recv timed out at tick "
                                f"{self.tick} (deadline {due})"))
                        except StopIteration:
                            self._retire(rank, live)
                            progressed = True
                            break
                    else:
                        packet = self.inboxes[rank].popleft()
                        waiting[rank] = False
                        deadlines.pop(rank, None)
                        if self.recorder is not None:
                            self.recorder.record_recv(
                                rank, packet.src, packet.tag,
                                packet.microbatch)
                        if self.tracer is not None:
                            self._trace_delivery(packet)
                        try:
                            request = gen.send(packet)
                        except StopIteration:
                            self._retire(rank, live)
                            progressed = True
                            break
                else:
                    break
                if isinstance(request, TimedRecv):
                    deadlines[rank] = self.tick + request.timeout
                elif request != RECV:
                    raise ProtocolError(
                        f"rank {rank} yielded {request!r}; rank programs "
                        f"may only yield RECV or recv_within(...)"
                    )
                waiting[rank] = True
                progressed = True
                if self.injector is not None:
                    # Under fault injection each rank advances one blocking
                    # step per sweep, so the tick clock has per-receive
                    # resolution for crash/delay schedules.  (Values are
                    # unaffected: delivery stays FIFO per channel, and rank
                    # programs are deterministic in their inputs.)
                    break
                # Loop again: the message may already be waiting.
        return progressed

    def _retire(self, rank: int, live: Dict[int, Generator]) -> None:
        del live[rank]
        self.finished.add(rank)

    def _raise_on_orphans(self) -> None:
        orphans = self._orphans()
        if orphans:
            raise self._orphan_error(orphans)
