"""Numerical collectives on the rank transports.

The trainer's data-parallel phase sums gradients directly for clarity; this
module provides the *algorithmic* counterpart — a real ring all-reduce
(reduce-scatter + all-gather) executed by rank programs exchanging chunk
messages — to demonstrate and test the communication pattern the cost model
prices.  The result is numerically the element-wise sum across ranks.

The rank program is a module-level generator (:func:`ring_allreduce_program`)
so both execution backends run it: the cooperative scheduler drives it
in-process, and :class:`~repro.runtime.parallel.ProcessTransport` ships it
to worker processes as a :class:`~repro.runtime.parallel.ProgramSpec`
(module-level functions pickle by reference; closures do not — the same
constraint lint rule REP008 enforces for payloads).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .transport import RECV, RankTransport

__all__ = ["ring_allreduce", "ring_allreduce_program"]

TAG_RING = "ring-chunk"


def _chunk_bounds(n: int, p: int) -> List[tuple]:
    base, extra = divmod(n, p)
    bounds = []
    start = 0
    for i in range(p):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def ring_allreduce_program(rank: int, send, p: int, buf: np.ndarray):
    """The textbook ring all-reduce for one rank (indices 0..p-1).

    ``send(dst, tag, microbatch, data)`` is the transport's bound send;
    ``buf`` is this rank's flat contribution, reduced **in place** and
    returned (the generator's ``return`` value, so the process backend can
    ship it home).  ``p - 1`` reduce-scatter rounds (each rank accumulates
    into one travelling chunk) then ``p - 1`` all-gather rounds (the
    finished chunks circulate).
    """
    buf = np.asarray(buf)
    bounds = _chunk_bounds(buf.size, p)
    succ = (rank + 1) % p
    # Reduce-scatter: in round t, rank i sends chunk (i - t) mod p and
    # accumulates the received chunk (i - t - 1) mod p.
    for t in range(p - 1):
        a, b = bounds[(rank - t) % p]
        send(succ, TAG_RING, t, buf[a:b].copy())
        pkt = yield RECV
        a, b = bounds[(rank - t - 1) % p]
        buf[a:b] += pkt.data
    # All-gather: circulate the completed chunks.
    for t in range(p - 1):
        a, b = bounds[(rank + 1 - t) % p]
        send(succ, TAG_RING, p + t, buf[a:b].copy())
        pkt = yield RECV
        a, b = bounds[(rank - t) % p]
        buf[a:b] = pkt.data
    return buf


def ring_allreduce(arrays: Dict[int, np.ndarray],
                   backend: str = "cooperative") -> Dict[int, np.ndarray]:
    """All-reduce (sum) ``arrays`` keyed by rank via an actual ring.

    Every rank runs :func:`ring_allreduce_program`; with
    ``backend="process"`` each rank runs in its own OS process over
    shared-memory rings.  Returns the reduced array per rank; all returned
    arrays are equal to the element-wise sum.
    """
    ranks = sorted(arrays)
    p = len(ranks)
    if p == 0:
        raise ValueError("no ranks")
    shapes = {r: arrays[r].shape for r in ranks}
    first = arrays[ranks[0]]
    if any(arrays[r].shape != first.shape or arrays[r].dtype != first.dtype
           for r in ranks):
        raise ValueError("all ranks must contribute same-shape, same-dtype "
                         "arrays")
    if p == 1:
        return {ranks[0]: arrays[ranks[0]].copy()}

    flat = {r: arrays[r].reshape(-1).copy() for r in ranks}
    index_of = {r: i for i, r in enumerate(ranks)}

    if backend == "process":
        from .parallel import ProcessTransport, ProgramSpec
        transport = ProcessTransport(p)
        try:
            results = transport.run({
                index_of[r]: ProgramSpec(ring_allreduce_program, p, flat[r])
                for r in ranks})
        finally:
            transport.close()
        return {r: np.asarray(results[index_of[r]]).reshape(shapes[r])
                for r in ranks}
    if backend != "cooperative":
        raise ValueError(f"unknown backend {backend!r}")

    transport = RankTransport(p)
    out: Dict[int, np.ndarray] = {}

    def bound(i: int):
        return lambda dst, tag, mb, data: transport.send(i, dst, tag, mb,
                                                         data)

    def capture(i: int, gen):
        out[i] = yield from gen

    transport.run({
        index_of[r]: capture(index_of[r],
                             ring_allreduce_program(index_of[r],
                                                    bound(index_of[r]), p,
                                                    flat[r]))
        for r in ranks})
    return {r: out[index_of[r]].reshape(shapes[r]) for r in ranks}
