"""Numerical collectives on the cooperative rank transport.

The trainer's data-parallel phase sums gradients directly for clarity; this
module provides the *algorithmic* counterpart — a real ring all-reduce
(reduce-scatter + all-gather) executed by rank programs exchanging chunk
messages — to demonstrate and test the communication pattern the cost model
prices.  The result is numerically the element-wise sum across ranks.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .transport import RECV, RankTransport

__all__ = ["ring_allreduce"]

TAG_RING = "ring-chunk"


def _chunk_bounds(n: int, p: int) -> List[tuple]:
    base, extra = divmod(n, p)
    bounds = []
    start = 0
    for i in range(p):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def ring_allreduce(arrays: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
    """All-reduce (sum) ``arrays`` keyed by rank via an actual ring.

    Every rank runs the textbook algorithm: ``p - 1`` reduce-scatter rounds
    (each rank accumulates into one travelling chunk) then ``p - 1``
    all-gather rounds (the finished chunks circulate).  Returns the reduced
    array per rank; all returned arrays are equal to the element-wise sum.
    """
    ranks = sorted(arrays)
    p = len(ranks)
    if p == 0:
        raise ValueError("no ranks")
    shapes = {r: arrays[r].shape for r in ranks}
    first = arrays[ranks[0]]
    if any(arrays[r].shape != first.shape or arrays[r].dtype != first.dtype
           for r in ranks):
        raise ValueError("all ranks must contribute same-shape, same-dtype "
                         "arrays")
    if p == 1:
        return {ranks[0]: arrays[ranks[0]].copy()}

    flat = {r: arrays[r].reshape(-1).copy() for r in ranks}
    n = first.size
    bounds = _chunk_bounds(n, p)
    transport = RankTransport(p)
    index_of = {r: i for i, r in enumerate(ranks)}

    def rank_program(rank: int):
        i = index_of[rank]
        succ = ranks[(i + 1) % p]
        buf = flat[rank]
        # Reduce-scatter: in round t, rank i sends chunk (i - t) mod p and
        # accumulates the received chunk (i - t - 1) mod p.
        for t in range(p - 1):
            send_chunk = (i - t) % p
            a, b = bounds[send_chunk]
            transport.send(i, index_of[succ], TAG_RING, t,
                           data=buf[a:b].copy())
            pkt = yield RECV
            recv_chunk = (i - t - 1) % p
            a, b = bounds[recv_chunk]
            buf[a:b] += pkt.data
        # All-gather: circulate the completed chunks.
        for t in range(p - 1):
            send_chunk = (i + 1 - t) % p
            a, b = bounds[send_chunk]
            transport.send(i, index_of[succ], TAG_RING, p + t,
                           data=buf[a:b].copy())
            pkt = yield RECV
            recv_chunk = (i - t) % p
            a, b = bounds[recv_chunk]
            buf[a:b] = pkt.data

    transport.run({index_of[r]: rank_program(r) for r in ranks})
    return {r: flat[r].reshape(shapes[r]) for r in ranks}
