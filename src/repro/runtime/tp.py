"""Intra-layer (tensor) parallelism as a first-class grid axis.

The follow-up paper to AxoNN ("A 4D Hybrid Algorithm to Scale Parallel
Training to Thousands of GPUs", arXiv 2305.13525) adds a ``G_intra``
dimension to the ``G_inter x G_data`` grid: each pipeline stage's layers
are sharded across a tensor-parallel group whose members exchange a
weight all-gather before each forward and a gradient reduce-scatter after
each backward.  This module provides that axis for the functional
runtime.

Bit-identity by construction ("gather weights, compute dense")
--------------------------------------------------------------
The acceptance bar is that a ``g_intra > 1`` run produces losses and
final weights *bit-identical* to the dense ``g_intra = 1`` run.  Summing
per-shard partial products (Megatron's split-K row-parallel linear, kept
in :mod:`repro.baselines.intra_layer` as the comparison baseline) cannot
deliver that: float addition is non-associative, so the re-associated
reduction drifts by ~1e-6 from the dense GEMM.  What *is* bit-exact is
concatenation: ``np.concatenate`` of contiguous row/column slices
reproduces the dense array bytewise, and :func:`~repro.nn.functional.concat`'s
backward slices the upstream gradient into exact per-shard pieces.

So the tensor-parallel stage stores genuinely sharded parameters —
separate :class:`~repro.nn.modules.Parameter` objects per (matrix part,
group member) following the 4D paper's row/column split — but each
forward **reassembles the dense weight with one concat and runs exactly
the dense code path**, reusing the dense stage's LayerNorm and Dropout
module objects so the RNG streams advance identically.  Gradients flow
through the concat back onto the shards as exact dense slices, and AdamW
is elementwise, so shard updates equal dense updates bit for bit.

Lead-compute protocol
---------------------
Group member ``t = 0`` (the *lead*) owns the full sharded stage and
drives Algorithm 2.  Members ``t > 0`` (*followers*) are protocol
participants: after every forward the lead sends each follower one
:data:`TAG_TP_WGT` message carrying the shard bytes that member lacks
(the weight all-gather), and after every backward one :data:`TAG_TP_GRAD`
message carrying the member's owned gradient shard (the reduce-scatter).
Followers acknowledge each message with :data:`TAG_TP_ACK`.  One message
per peer per pass — per-layer volumes ride inside the payload — keeps
the model checker's interleaving space small while the byte counts stay
real.  Both ends record the collective on their own rank under a key
naming the group, ``(group, direction, microbatch)``; per-channel FIFO
delivery makes every member's recorded sequence identical, which
:func:`~repro.analysis.protocol.check_collective_order` verifies.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

import numpy as np

from ..analysis.protocol import ProtocolError
from ..baselines.intra_layer import _split_sizes
from ..nn import F, GPTConfig, Module
from ..nn.modules import Parameter
from ..nn.transformer import MLP, Block, CausalSelfAttention
from .grid import RankGrid
from .stage import PipelineStage
from .transport import RECV

__all__ = ["TAG_TP_WGT", "TAG_TP_GRAD", "TAG_TP_ACK", "ShardedAttention",
           "ShardedMLP", "TPBlock", "TensorParallelStage", "TPComm",
           "tp_follower_step"]

TAG_TP_WGT = "tp_wgt"
TAG_TP_GRAD = "tp_grad"
TAG_TP_ACK = "tp_ack"

#: record callable signature: record(rank, op, key, nbytes)
RecordFn = Callable[[int, str, tuple, int], None]


class ShardedAttention(Module):
    """Head-sharded causal self-attention computing the exact dense math.

    QKV weights are sharded head-major per group member (``wq_t``/``wk_t``/
    ``wv_t`` plus biases); the output projection is column-sharded along
    the same head partition.  The projection bias, like LayerNorm, is
    replicated (it is added after the row-parallel reduce in the 4D
    scheme, so no member owns a slice of it).
    """

    def __init__(self, dense: CausalSelfAttention, g_intra: int):
        super().__init__()
        cfg = dense.cfg
        self.cfg = cfg
        self.g_intra = g_intra
        self.head_counts = _split_sizes(cfg.n_head, g_intra)
        self._mask = dense._mask
        self.drop = dense.drop  # same module: RNG advances as in dense
        h, hd = cfg.hidden, cfg.head_dim
        wd, bd = dense.qkv.weight.data, dense.qkv.bias.data
        # _qkv_w[part][t] with part in (q, k, v): the dense qkv weight has
        # rows [q; k; v], each internally head-major, so concatenating all
        # q shards, then k, then v reproduces it bytewise.
        self._qkv_w: List[List[Parameter]] = [[], [], []]
        self._qkv_b: List[List[Parameter]] = [[], [], []]
        for part, pname in enumerate("qkv"):
            head0 = 0
            for t, hc in enumerate(self.head_counts):
                rows = slice(part * h + head0 * hd,
                             part * h + (head0 + hc) * hd)
                w = Parameter(wd[rows].copy())
                b = Parameter(bd[rows].copy())
                setattr(self, f"w{pname}{t}", w)
                setattr(self, f"b{pname}{t}", b)
                self._qkv_w[part].append(w)
                self._qkv_b[part].append(b)
                head0 += hc
        self.proj_w: List[Parameter] = []
        pw = dense.proj.weight.data
        col0 = 0
        for t, hc in enumerate(self.head_counts):
            cols = slice(col0 * hd, (col0 + hc) * hd)
            w = Parameter(pw[:, cols].copy())
            setattr(self, f"wproj{t}", w)
            self.proj_w.append(w)
            col0 += hc
        self.proj_b = Parameter(dense.proj.bias.data.copy())

    def shard_params(self, t: int) -> List[Parameter]:
        """Parameters owned by group member ``t``."""
        return ([self._qkv_w[p][t] for p in range(3)]
                + [self._qkv_b[p][t] for p in range(3)]
                + [self.proj_w[t]])

    def dense_arrays(self) -> Dict[str, np.ndarray]:
        """Reassembled dense weights under the dense module's names."""
        return {
            "qkv.weight": np.concatenate(
                [p.data for part in self._qkv_w for p in part]),
            "qkv.bias": np.concatenate(
                [p.data for part in self._qkv_b for p in part]),
            "proj.weight": np.concatenate(
                [p.data for p in self.proj_w], axis=1),
            "proj.bias": self.proj_b.data.copy(),
        }

    def forward(self, x):
        b, t, h = x.shape
        nh, hd = self.cfg.n_head, self.cfg.head_dim
        w_full = F.concat([p for part in self._qkv_w for p in part], axis=0)
        b_full = F.concat([p for part in self._qkv_b for p in part], axis=0)
        qkv = F.linear(x, w_full, b_full)
        qkv = qkv.reshape(b, t, 3, nh, hd)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        att = F.masked_softmax(q @ k.swapaxes(-1, -2),
                               self._mask[:t, :t],
                               scale=1.0 / np.sqrt(hd))
        att = self.drop(att)
        y = att @ v
        y = y.transpose(0, 2, 1, 3).reshape(b, t, h)
        pw_full = F.concat(self.proj_w, axis=1)
        return self.drop(F.linear(y, pw_full, self.proj_b))


class ShardedMLP(Module):
    """Row/column-sharded MLP computing the exact dense math.

    ``fc`` is sharded along its output dimension, ``proj`` along its
    input dimension with the same partition (Megatron's pairing, which
    the 4D paper keeps); the ``proj`` bias is replicated.
    """

    def __init__(self, dense: MLP, g_intra: int):
        super().__init__()
        self.g_intra = g_intra
        self.fc_sizes = _split_sizes(dense.fc.out_features, g_intra)
        self.drop = dense.drop  # same module: RNG advances as in dense
        self.fc_w: List[Parameter] = []
        self.fc_b: List[Parameter] = []
        self.proj_w: List[Parameter] = []
        off = 0
        for t, size in enumerate(self.fc_sizes):
            rows = slice(off, off + size)
            w = Parameter(dense.fc.weight.data[rows].copy())
            b = Parameter(dense.fc.bias.data[rows].copy())
            pw = Parameter(dense.proj.weight.data[:, rows].copy())
            setattr(self, f"wfc{t}", w)
            setattr(self, f"bfc{t}", b)
            setattr(self, f"wproj{t}", pw)
            self.fc_w.append(w)
            self.fc_b.append(b)
            self.proj_w.append(pw)
            off += size
        self.proj_b = Parameter(dense.proj.bias.data.copy())

    def shard_params(self, t: int) -> List[Parameter]:
        return [self.fc_w[t], self.fc_b[t], self.proj_w[t]]

    def dense_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "fc.weight": np.concatenate([p.data for p in self.fc_w]),
            "fc.bias": np.concatenate([p.data for p in self.fc_b]),
            "proj.weight": np.concatenate(
                [p.data for p in self.proj_w], axis=1),
            "proj.bias": self.proj_b.data.copy(),
        }

    def forward(self, x):
        w_fc = F.concat(self.fc_w, axis=0)
        b_fc = F.concat(self.fc_b, axis=0)
        w_p = F.concat(self.proj_w, axis=1)
        return self.drop(F.linear(F.gelu(F.linear(x, w_fc, b_fc)),
                                  w_p, self.proj_b))


class TPBlock(Module):
    """A transformer block with sharded attention/MLP and replicated
    LayerNorms, built *from* a dense :class:`~repro.nn.Block` (whose
    LayerNorm and Dropout modules it adopts, keeping init and RNG streams
    identical to the dense stage)."""

    def __init__(self, dense: Block, g_intra: int):
        super().__init__()
        self.ln1 = dense.ln1
        self.attn = ShardedAttention(dense.attn, g_intra)
        self.ln2 = dense.ln2
        self.mlp = ShardedMLP(dense.mlp, g_intra)

    def forward(self, x, cache=None):
        if cache is not None:
            raise RuntimeError("tensor-parallel blocks are training-only")
        x = x + self.attn(self.ln1(x))
        x = x + self.mlp(self.ln2(x))
        return x

    def shard_params(self, t: int) -> List[Parameter]:
        return self.attn.shard_params(t) + self.mlp.shard_params(t)

    def dense_arrays(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name, p in self.ln1.named_parameters():
            out[f"ln1.{name}"] = p.data.copy()
        for name, arr in self.attn.dense_arrays().items():
            out[f"attn.{name}"] = arr
        for name, p in self.ln2.named_parameters():
            out[f"ln2.{name}"] = p.data.copy()
        for name, arr in self.mlp.dense_arrays().items():
            out[f"mlp.{name}"] = arr
        return out


class TensorParallelStage(PipelineStage):
    """A pipeline stage whose transformer blocks are sharded across a
    ``g_intra``-member tensor-parallel group (held in full by the group
    lead; see the module docstring for the lead-compute design)."""

    def __init__(self, cfg: GPTConfig, stage_index: int, g_inter: int,
                 g_intra: int, checkpoint_activations: bool = False):
        if g_intra < 1:
            raise ValueError("g_intra must be >= 1")
        if checkpoint_activations and g_intra > 1:
            raise ValueError(
                "checkpoint_activations is not supported with g_intra > 1 "
                "(the checkpointed replay would re-gather shards mid-"
                "backward); disable one of the two")
        super().__init__(cfg, stage_index, g_inter,
                         checkpoint_activations=False)
        self.g_intra = g_intra
        for idx in range(self._blocks_start, self._blocks_end):
            self.layers[idx] = TPBlock(self.layers[idx], g_intra)

    def _tp_blocks(self) -> List[TPBlock]:
        return [layer for layer in self.layers if isinstance(layer, TPBlock)]

    # -- protocol payloads -------------------------------------------------
    def shard_flat(self, t: int) -> np.ndarray:
        """Member ``t``'s owned weights, flattened across all blocks."""
        parts = [p.data.ravel() for blk in self._tp_blocks()
                 for p in blk.shard_params(t)]
        if not parts:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(parts)

    def shard_grad_flat(self, t: int) -> np.ndarray:
        """Member ``t``'s owned accumulated gradients, flattened."""
        parts = []
        for blk in self._tp_blocks():
            for p in blk.shard_params(t):
                g = p.grad
                parts.append((g if g is not None
                              else np.zeros_like(p.data)).ravel())
        if not parts:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(parts)

    def wgt_payload(self, t: int) -> np.ndarray:
        """All-gather bytes for member ``t``: every shard it lacks."""
        parts = [self.shard_flat(u) for u in range(self.g_intra) if u != t]
        if not parts:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(parts)

    def grad_payload(self, t: int) -> np.ndarray:
        """Reduce-scatter bytes for member ``t``: its owned grad shard."""
        return self.shard_grad_flat(t)

    # -- state -------------------------------------------------------------
    def dense_state(self) -> Dict[str, np.ndarray]:
        """The stage's weights reassembled under the *dense* stage's
        parameter names, for cross-configuration equivalence checks."""
        out: Dict[str, np.ndarray] = {}
        for li, layer in enumerate(self.layers):
            slot = self.slot_range[0] + li
            if isinstance(layer, TPBlock):
                for name, arr in layer.dense_arrays().items():
                    out[f"slot{slot}.{name}"] = arr
            else:
                for name, p in layer.named_parameters():
                    out[f"slot{slot}.{name}"] = p.data.copy()
        return out


class TPComm:
    """One rank's view of its tensor-parallel group and the emission /
    recording helpers the rank programs use.

    ``send`` is the transport send with the source rank bound
    (``send(dst, tag, microbatch, data)``).  ``wgt_payload(t)`` /
    ``grad_payload(t)`` build the real message bytes on the lead (None on
    followers and in the symbolic checker, where payloads are empty).
    ``record(rank, op, key, nbytes)`` is the backend's collective sink —
    trace recorder, perf counters and obs spans on the real substrates,
    the skeleton capture in the model checker.
    """

    def __init__(self, rank: int, grid: RankGrid, send,
                 wgt_payload: Optional[Callable[[int], np.ndarray]] = None,
                 grad_payload: Optional[Callable[[int], np.ndarray]] = None,
                 record: Optional[RecordFn] = None):
        self.rank = rank
        self.grid = grid
        i, j, t = grid.coord3_of(rank)
        self.group_key = (i, j)
        self.t = t
        self.lead = grid.tp_lead(rank)
        self.group = grid.tp_group(i, j)
        self.peers = grid.tp_peers(rank)
        self.send = send
        self.wgt_payload = wgt_payload
        self.grad_payload = grad_payload
        self.record = record

    @property
    def acks_per_microbatch(self) -> int:
        """Acks the lead absorbs per microbatch (one per peer per pass)."""
        return 2 * len(self.peers)

    def record_collective(self, op: str, direction: str, microbatch: int,
                          nbytes: int) -> None:
        if self.record is not None:
            self.record(self.rank, op,
                        (self.group_key, direction, microbatch), nbytes)

    # -- lead side ---------------------------------------------------------
    def emit_weights(self, microbatch: int) -> None:
        """The group's weight all-gather for one forward pass: one
        :data:`TAG_TP_WGT` message per peer carrying the shards it lacks."""
        nbytes = 0
        for peer in self.peers:
            t = self.grid.tp_index(peer)
            data = None if self.wgt_payload is None else self.wgt_payload(t)
            if data is not None:
                nbytes += int(data.nbytes)
            self.send(peer, TAG_TP_WGT, microbatch, data)
        self.record_collective("tp_allgather", "fwd", microbatch, nbytes)

    def emit_grads(self, microbatch: int) -> None:
        """The group's gradient reduce-scatter for one backward pass: one
        :data:`TAG_TP_GRAD` message per peer carrying its owned shard."""
        nbytes = 0
        for peer in self.peers:
            t = self.grid.tp_index(peer)
            data = None if self.grad_payload is None else self.grad_payload(t)
            if data is not None:
                nbytes += int(data.nbytes)
            self.send(peer, TAG_TP_GRAD, microbatch, data)
        self.record_collective("tp_reduce_scatter", "bwd", microbatch, nbytes)


def tp_follower_step(rank: int, grid: RankGrid, comm: TPComm,
                     total_microbatches: int) -> Generator:
    """Rank program for a tensor-parallel follower (``t > 0``).

    Reactive: absorbs exactly ``2 * m`` messages from the group lead —
    one weight all-gather per forward, one gradient reduce-scatter per
    backward — recording each collective under the same group-named key
    the lead records, and acknowledging each with :data:`TAG_TP_ACK`.
    Per-channel FIFO delivery means the recorded collective sequence is
    identical to the lead's, which the protocol verifier checks.
    """
    expected = 2 * total_microbatches
    for _ in range(expected):
        pkt = yield RECV
        if pkt.src != comm.lead or pkt.tag not in (TAG_TP_WGT, TAG_TP_GRAD):
            raise ProtocolError(
                f"tp follower {rank} received unexpected packet {pkt}")
        data = pkt.data
        nbytes = int(data.nbytes) if data is not None else 0
        if pkt.tag == TAG_TP_WGT:
            comm.record_collective("tp_allgather", "fwd",
                                   pkt.microbatch, nbytes)
        else:
            comm.record_collective("tp_reduce_scatter", "bwd",
                                   pkt.microbatch, nbytes)
        # Acks are pure credits: constant content (microbatch -1), so the
        # model checker's counts-quotient stays sound on the ack channel.
        comm.send(comm.lead, TAG_TP_ACK, -1, None)
