"""The virtual process grid of the functional runtime.

Mirrors the paper's Fig. 2 extended with the follow-up 4D decomposition
(arXiv 2305.13525): ranks are arranged as ``G_inter`` pipeline stages x
``G_data`` data-parallel groups x ``G_intra`` tensor-parallel members.
Rank ids are dense integers; ``RankGrid`` provides the coordinate mapping
and the neighbour / group queries Algorithm 2 needs (``g^{i-1,j}``,
``g^{i+1,j}``, the all-reduce column) plus the intra-layer group of each
stage replica.

Layout: ``rank = ((j * G_inter) + i) * G_intra + t`` — with ``G_intra=1``
this degenerates to the original 2D numbering ``j * G_inter + i``, so all
pre-4D configurations keep their exact rank ids (and trace/checkpoint
compatibility).  Member ``t=0`` of each intra group is the *lead*: it
holds the stage's tensor-parallel shards and drives Algorithm 2, while
members ``t>0`` participate in the intra-stage weight all-gather /
gradient reduce-scatter exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["RankGrid"]


@dataclass(frozen=True)
class RankGrid:
    """``G_inter x G_data x G_intra`` grid; intra-major rank numbering."""

    g_inter: int
    g_data: int
    g_intra: int = 1

    def __post_init__(self):
        if self.g_inter < 1 or self.g_data < 1 or self.g_intra < 1:
            raise ValueError("grid dimensions must be >= 1")

    @property
    def world_size(self) -> int:
        return self.g_inter * self.g_data * self.g_intra

    def rank_of(self, i: int, j: int, t: int = 0) -> int:
        """Rank of intra member ``t`` of pipeline stage ``i`` in
        data-parallel group ``j``."""
        if not (0 <= i < self.g_inter and 0 <= j < self.g_data
                and 0 <= t < self.g_intra):
            raise ValueError(
                f"coordinate ({i}, {j}, {t}) outside "
                f"{self.g_inter}x{self.g_data}x{self.g_intra} grid"
            )
        return ((j * self.g_inter) + i) * self.g_intra + t

    def coord_of(self, rank: int) -> Tuple[int, int]:
        """(stage, group) of ``rank`` — the 2D coordinate every pre-4D
        call site uses; the intra index is :meth:`tp_index`."""
        i, j, _t = self.coord3_of(rank)
        return i, j

    def coord3_of(self, rank: int) -> Tuple[int, int, int]:
        """(stage, group, intra member) of ``rank``."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside [0, {self.world_size})")
        rest, t = divmod(rank, self.g_intra)
        j, i = divmod(rest, self.g_inter)
        return i, j, t

    # -- intra-layer (tensor-parallel) group --------------------------------
    def tp_index(self, rank: int) -> int:
        """Intra-group member index ``t`` of ``rank`` (0 == lead)."""
        return self.coord3_of(rank)[2]

    def is_tp_lead(self, rank: int) -> bool:
        """True for the member that owns the stage and runs Algorithm 2."""
        return self.tp_index(rank) == 0

    def tp_lead(self, rank: int) -> int:
        """The lead rank of ``rank``'s intra-layer group."""
        i, j, _t = self.coord3_of(rank)
        return self.rank_of(i, j, 0)

    def tp_group(self, i: int, j: int) -> List[int]:
        """All intra-layer members of stage ``i`` in data group ``j``."""
        return [self.rank_of(i, j, t) for t in range(self.g_intra)]

    def tp_peers(self, rank: int) -> List[int]:
        """The other members of ``rank``'s intra-layer group."""
        i, j, t = self.coord3_of(rank)
        return [r for r in self.tp_group(i, j) if r != rank]

    # -- Algorithm 2 neighbours ---------------------------------------------
    def prev_in_pipeline(self, rank: int) -> Optional[int]:
        """``g^{i-1,j}`` (same intra member) or None for the first stage."""
        i, j, t = self.coord3_of(rank)
        return None if i == 0 else self.rank_of(i - 1, j, t)

    def next_in_pipeline(self, rank: int) -> Optional[int]:
        """``g^{i+1,j}`` (same intra member) or None for the last stage."""
        i, j, t = self.coord3_of(rank)
        return None if i == self.g_inter - 1 else self.rank_of(i + 1, j, t)

    def is_first_stage(self, rank: int) -> bool:
        return self.coord3_of(rank)[0] == 0

    def is_last_stage(self, rank: int) -> bool:
        return self.coord3_of(rank)[0] == self.g_inter - 1

    # -- groups -------------------------------------------------------------
    def pipeline_ranks(self, j: int, t: int = 0) -> List[int]:
        """Ranks of data-parallel group ``j`` (intra member ``t``) in
        stage order."""
        return [self.rank_of(i, j, t) for i in range(self.g_inter)]

    def data_parallel_ranks(self, i: int, t: int = 0) -> List[int]:
        """All ranks holding stage ``i`` at intra member ``t`` (the
        gradient all-reduce group; leads by default)."""
        return [self.rank_of(i, j, t) for j in range(self.g_data)]
