"""The virtual 2D process grid of the functional runtime.

Mirrors the paper's Fig. 2: ranks are arranged as ``G_inter`` pipeline
stages x ``G_data`` data-parallel groups.  Rank ids are dense integers;
``RankGrid`` provides the coordinate mapping and the neighbour / group
queries Algorithm 2 needs (``g^{i-1,j}``, ``g^{i+1,j}``, the all-reduce
column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["RankGrid"]


@dataclass(frozen=True)
class RankGrid:
    """``G_inter x G_data`` grid with row-major-in-pipeline rank numbering."""

    g_inter: int
    g_data: int

    def __post_init__(self):
        if self.g_inter < 1 or self.g_data < 1:
            raise ValueError("grid dimensions must be >= 1")

    @property
    def world_size(self) -> int:
        return self.g_inter * self.g_data

    def rank_of(self, i: int, j: int) -> int:
        """Rank of pipeline stage ``i`` in data-parallel group ``j``."""
        if not (0 <= i < self.g_inter and 0 <= j < self.g_data):
            raise ValueError(
                f"coordinate ({i}, {j}) outside "
                f"{self.g_inter}x{self.g_data} grid"
            )
        return j * self.g_inter + i

    def coord_of(self, rank: int) -> Tuple[int, int]:
        """(stage, group) of ``rank``."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside [0, {self.world_size})")
        return rank % self.g_inter, rank // self.g_inter

    # -- Algorithm 2 neighbours -------------------------------------------------
    def prev_in_pipeline(self, rank: int) -> Optional[int]:
        """``g^{i-1,j}`` or None for the first stage."""
        i, j = self.coord_of(rank)
        return None if i == 0 else self.rank_of(i - 1, j)

    def next_in_pipeline(self, rank: int) -> Optional[int]:
        """``g^{i+1,j}`` or None for the last stage."""
        i, j = self.coord_of(rank)
        return None if i == self.g_inter - 1 else self.rank_of(i + 1, j)

    def is_first_stage(self, rank: int) -> bool:
        return self.coord_of(rank)[0] == 0

    def is_last_stage(self, rank: int) -> bool:
        return self.coord_of(rank)[0] == self.g_inter - 1

    # -- groups -------------------------------------------------------------
    def pipeline_ranks(self, j: int) -> List[int]:
        """All ranks of data-parallel group ``j`` in stage order."""
        return [self.rank_of(i, j) for i in range(self.g_inter)]

    def data_parallel_ranks(self, i: int) -> List[int]:
        """All ranks holding stage ``i`` (the gradient all-reduce group)."""
        return [self.rank_of(i, j) for j in range(self.g_data)]
