"""Synthetic serving workloads: seeded request mixes and arrival processes.

Two independent seeded streams, so the same request mix can be replayed
under different arrival intensities:

* :func:`make_requests` — deterministic request parameters (prompt tokens,
  generation budgets, sampling settings) for the functional engine and the
  DES twin alike;
* :class:`ArrivalSpec` — an arrival-process description consumed by
  :func:`repro.sim.poisson_process`: constant-rate Poisson, a bursty
  on/off modulated Poisson (rate multiplied by ``burst_factor`` during the
  "on" fraction of each period — a square-wave intensity), a *diurnal*
  sinusoidally modulated Poisson (multi-hour period, the fleet
  autoscaling workload), or a *flash crowd* (a sudden rate spike that
  decays exponentially back to the base rate).

Every kind is a seeded inhomogeneous Poisson process driven by the same
sequential-exponential sampler, so :meth:`ArrivalSpec.sample_times`
reproduces — draw for draw — the arrival instants the DES's
:func:`repro.sim.poisson_process` generates from the same spec.  That is
what lets a functional-substrate fleet run replay the exact trace a DES
sweep was scored on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..nn import GPTConfig
from .engine import Request

__all__ = ["ARRIVAL_KINDS", "ArrivalSpec", "RequestSpec", "make_requests"]


@dataclass(frozen=True)
class RequestSpec:
    """Size/sampling distribution of the synthetic request mix."""

    mean_prompt: int = 8         #: mean prompt length (geometric-ish)
    mean_new_tokens: int = 8     #: mean generation budget
    greedy_fraction: float = 0.5  #: fraction of requests decoded greedily
    seed: int = 0

    def __post_init__(self):
        if self.mean_prompt < 1 or self.mean_new_tokens < 1:
            raise ValueError("mean prompt/new-token lengths must be >= 1")
        if not 0.0 <= self.greedy_fraction <= 1.0:
            raise ValueError("greedy_fraction must be in [0, 1]")


def make_requests(cfg: GPTConfig, n: int,
                  spec: Optional[RequestSpec] = None) -> List[Request]:
    """``n`` deterministic requests drawn from ``spec``'s distributions.

    Lengths are clipped so ``prompt + max_new_tokens <= cfg.seq_len`` (the
    engine's admission contract); each request gets its own sampling seed
    derived from the spec seed and its id.
    """
    spec = spec or RequestSpec()
    rng = np.random.default_rng(spec.seed)
    requests = []
    for rid in range(n):
        p = int(min(1 + rng.geometric(1.0 / spec.mean_prompt),
                    cfg.seq_len - 1))
        m = int(min(1 + rng.geometric(1.0 / spec.mean_new_tokens),
                    cfg.seq_len - p))
        prompt = rng.integers(0, cfg.vocab_size, size=p)
        greedy = bool(rng.random() < spec.greedy_fraction)
        requests.append(Request(
            rid=rid, prompt=prompt, max_new_tokens=m,
            temperature=float(rng.uniform(0.7, 1.3)),
            top_k=int(rng.integers(2, max(3, cfg.vocab_size // 2)))
            if rng.random() < 0.5 else None,
            greedy=greedy, seed=spec.seed * 1_000_003 + rid))
    return requests


#: arrival-process shapes understood by :class:`ArrivalSpec`
ARRIVAL_KINDS = ("poisson", "diurnal", "flash")


@dataclass(frozen=True)
class ArrivalSpec:
    """Seeded (possibly modulated) Poisson arrival process.

    ``rate_per_s`` is the *base* arrival rate; ``kind`` selects how the
    instantaneous rate moves around it:

    ``poisson``
        constant rate, or — with ``burst_factor > 1`` — a square wave of
        period ``burst_period_s``: ``burst_factor`` times the base rate
        during the first ``burst_fraction`` of each period and
        proportionally less in the remainder, so the long-run mean stays
        ``rate_per_s``.
    ``diurnal``
        sinusoidal modulation ``rate * (1 + amplitude *
        sin(2*pi*t/period))`` with a multi-hour ``diurnal_period_s`` —
        the canonical day/night demand curve the fleet autoscaler is
        sized against.  ``diurnal_phase`` shifts where in the cycle the
        run starts (0 starts at the mean on the way up).
    ``flash``
        flash crowd: base rate until ``flash_at_s``, then an instantaneous
        jump to ``flash_factor`` times the base that decays back
        exponentially with time constant ``flash_decay_s`` — a spike with
        a heavy shoulder, the anti-diurnal stress case.
    """

    rate_per_s: float
    seed: int = 0
    burst_factor: float = 1.0
    burst_period_s: float = 10.0
    burst_fraction: float = 0.3
    kind: str = "poisson"
    # diurnal parameters
    diurnal_period_s: float = 4 * 3600.0
    diurnal_amplitude: float = 0.8
    diurnal_phase: float = 0.0
    # flash-crowd parameters
    flash_at_s: float = 60.0
    flash_factor: float = 5.0
    flash_decay_s: float = 30.0

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.kind!r}; "
                             f"expected one of {ARRIVAL_KINDS}")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.burst_period_s <= 0:
            raise ValueError("burst_period_s must be positive")
        if self.burst_factor * self.burst_fraction >= 1.0 and \
                self.burst_factor > 1.0:
            raise ValueError(
                "burst_factor * burst_fraction must stay < 1 so the "
                "off-phase rate remains positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1) so the "
                             "overnight rate stays positive")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if self.flash_factor < 1.0:
            raise ValueError("flash_factor must be >= 1")
        if self.flash_at_s < 0 or self.flash_decay_s <= 0:
            raise ValueError("flash_at_s must be >= 0 and flash_decay_s "
                             "positive")

    def rate_at(self, now: float) -> float:
        """Instantaneous arrival rate at simulated time ``now``."""
        base = self.rate_per_s
        if self.kind == "diurnal":
            phase = 2.0 * np.pi * (now / self.diurnal_period_s) \
                + self.diurnal_phase
            return base * (1.0 + self.diurnal_amplitude * np.sin(phase))
        if self.kind == "flash":
            if now < self.flash_at_s:
                return base
            decay = np.exp(-(now - self.flash_at_s) / self.flash_decay_s)
            return base * (1.0 + (self.flash_factor - 1.0) * decay)
        if self.burst_factor == 1.0:
            return base
        hi = base * self.burst_factor
        lo = base * (1.0 - self.burst_factor * self.burst_fraction) / \
            (1.0 - self.burst_fraction)
        phase = (now % self.burst_period_s) / self.burst_period_s
        return hi if phase < self.burst_fraction else lo

    def mean_interarrival(self) -> Callable[[float], float]:
        """The ``mean_interval_s(now)`` callable for
        :func:`repro.sim.poisson_process`."""
        if self.kind == "poisson" and self.burst_factor == 1.0:
            base = self.rate_per_s
            return lambda _now: 1.0 / base
        return lambda now: 1.0 / self.rate_at(now)

    def sample_times(self, horizon_s: float) -> List[float]:
        """The arrival instants in ``[0, horizon_s)`` — exactly the times
        :func:`repro.sim.poisson_process` fires for this spec.

        Replays the DES's draw order (one exponential per arrival, mean
        re-evaluated at the current time) from a fresh
        ``default_rng(seed)``, so a functional-substrate run consuming
        this list sees the identical trace a DES run was scored on.
        """
        rng = np.random.default_rng(self.seed)
        mean = self.mean_interarrival()
        now, times = 0.0, []
        while True:
            now += float(rng.exponential(mean(now)))
            if now >= horizon_s:
                return times
            times.append(now)
