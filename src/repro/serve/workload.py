"""Synthetic serving workloads: seeded request mixes and arrival processes.

Two independent seeded streams, so the same request mix can be replayed
under different arrival intensities:

* :func:`make_requests` — deterministic request parameters (prompt tokens,
  generation budgets, sampling settings) for the functional engine and the
  DES twin alike;
* :class:`ArrivalSpec` — an arrival-process description consumed by
  :func:`repro.sim.poisson_process`: constant-rate Poisson, or a bursty
  on/off modulated Poisson (rate multiplied by ``burst_factor`` during the
  "on" fraction of each period — a square-wave intensity, the standard
  simple model for diurnal/bursty traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..nn import GPTConfig
from .engine import Request

__all__ = ["ArrivalSpec", "RequestSpec", "make_requests"]


@dataclass(frozen=True)
class RequestSpec:
    """Size/sampling distribution of the synthetic request mix."""

    mean_prompt: int = 8         #: mean prompt length (geometric-ish)
    mean_new_tokens: int = 8     #: mean generation budget
    greedy_fraction: float = 0.5  #: fraction of requests decoded greedily
    seed: int = 0

    def __post_init__(self):
        if self.mean_prompt < 1 or self.mean_new_tokens < 1:
            raise ValueError("mean prompt/new-token lengths must be >= 1")
        if not 0.0 <= self.greedy_fraction <= 1.0:
            raise ValueError("greedy_fraction must be in [0, 1]")


def make_requests(cfg: GPTConfig, n: int,
                  spec: Optional[RequestSpec] = None) -> List[Request]:
    """``n`` deterministic requests drawn from ``spec``'s distributions.

    Lengths are clipped so ``prompt + max_new_tokens <= cfg.seq_len`` (the
    engine's admission contract); each request gets its own sampling seed
    derived from the spec seed and its id.
    """
    spec = spec or RequestSpec()
    rng = np.random.default_rng(spec.seed)
    requests = []
    for rid in range(n):
        p = int(min(1 + rng.geometric(1.0 / spec.mean_prompt),
                    cfg.seq_len - 1))
        m = int(min(1 + rng.geometric(1.0 / spec.mean_new_tokens),
                    cfg.seq_len - p))
        prompt = rng.integers(0, cfg.vocab_size, size=p)
        greedy = bool(rng.random() < spec.greedy_fraction)
        requests.append(Request(
            rid=rid, prompt=prompt, max_new_tokens=m,
            temperature=float(rng.uniform(0.7, 1.3)),
            top_k=int(rng.integers(2, max(3, cfg.vocab_size // 2)))
            if rng.random() < 0.5 else None,
            greedy=greedy, seed=spec.seed * 1_000_003 + rid))
    return requests


@dataclass(frozen=True)
class ArrivalSpec:
    """Seeded (possibly bursty) Poisson arrival process.

    ``rate_per_s`` is the *mean* arrival rate.  With ``burst_factor > 1``
    the instantaneous rate follows a square wave of period
    ``burst_period_s``: ``burst_factor`` times the base rate during the
    first ``burst_fraction`` of each period, and proportionally less in
    the remainder, so the long-run mean stays ``rate_per_s``.
    """

    rate_per_s: float
    seed: int = 0
    burst_factor: float = 1.0
    burst_period_s: float = 10.0
    burst_fraction: float = 0.3

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.burst_period_s <= 0:
            raise ValueError("burst_period_s must be positive")
        if self.burst_factor * self.burst_fraction >= 1.0 and \
                self.burst_factor > 1.0:
            raise ValueError(
                "burst_factor * burst_fraction must stay < 1 so the "
                "off-phase rate remains positive")

    def mean_interarrival(self) -> Callable[[float], float]:
        """The ``mean_interval_s(now)`` callable for
        :func:`repro.sim.poisson_process`."""
        base = self.rate_per_s
        if self.burst_factor == 1.0:
            return lambda _now: 1.0 / base
        hi = base * self.burst_factor
        lo = base * (1.0 - self.burst_factor * self.burst_fraction) / \
            (1.0 - self.burst_fraction)
        period, on = self.burst_period_s, self.burst_fraction

        def mean(now: float) -> float:
            phase = (now % period) / period
            return 1.0 / (hi if phase < on else lo)

        return mean
