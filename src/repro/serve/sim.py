"""DES twin of the serving engine: replicated pipelines at paper scale.

The functional engine (:mod:`repro.serve.engine`) proves the scheduling is
*correct*; this module measures what the same policy *costs* on Summit-class
hardware, exactly the way :mod:`repro.resilience.sim` is the performance
twin of the recovery machinery.  Each replica is one ``g_inter``-deep
pipeline whose stages are simulation processes connected by stores; a
router with bounded admission queues feeds requests from a seeded
(optionally bursty) Poisson source (:func:`repro.sim.poisson_process` —
the same generator the failure injector uses); replica crashes come from a
:class:`~repro.resilience.FaultPlan` and trigger failover re-admission of
every outstanding request.

Modeled costs follow the repo's calibration idiom: a pipeline group-pass
on one stage costs ``alpha + beta_d * n_decode_items + beta_p *
n_prefill_tokens``, with the betas derivable from the V100 spec via
:meth:`ServingModel.from_cluster`.  The analytic roofline used by the
experiment table falls straight out of this cost model: with saturated
continuous batches of width ``B``, the bottleneck stage emits ``B`` tokens
every ``stage_time(B, 0)`` seconds per replica, discounted by each
request's one-off prefill occupancy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..cluster import ClusterSpec, default_calibration, summit
from ..nn import GPTConfig
from ..obs import ObsSpan
from ..resilience import FaultPlan
from ..sim import Environment, Interrupt, Store, poisson_process
from .workload import ArrivalSpec, RequestSpec

__all__ = ["ServingModel", "ServingStats", "simulate_serving",
           "simulate_closed_loop", "sweep_offered_load"]


@dataclass(frozen=True)
class ServingModel:
    """Cost/topology parameters of a replicated serving deployment."""

    n_replicas: int = 2
    g_inter: int = 4               #: pipeline depth of each replica
    stage_alpha_s: float = 1e-3    #: fixed per-group stage overhead
    decode_s_per_item: float = 5e-4  #: per decode token per stage
    prefill_s_per_token: float = 1e-4  #: per prompt token per stage
    max_batch: int = 8             #: decode-group width (per-pass batch)
    pipeline_limit: int = 0        #: in-flight groups (0 -> g_inter)
    max_active: int = 0            #: KV-resident requests per replica
                                   #: (0 -> max_batch * pipeline_limit)
    queue_capacity: int = 64       #: bounded admission queue per replica

    def __post_init__(self):
        if self.n_replicas < 1 or self.g_inter < 1 or self.max_batch < 1:
            raise ValueError("replicas/stages/batch must be >= 1")
        if min(self.stage_alpha_s, self.decode_s_per_item,
               self.prefill_s_per_token) <= 0:
            raise ValueError("all cost coefficients must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")

    @property
    def effective_pipeline_limit(self) -> int:
        return self.pipeline_limit if self.pipeline_limit > 0 \
            else self.g_inter

    @property
    def effective_max_active(self) -> int:
        """KV slots per replica.  Keeping ``pipeline_limit`` decode
        groups of width ``max_batch`` in flight needs this many resident
        requests; fewer leaves pipeline bubbles between a request's
        consecutive tokens (each token must round-trip all stages before
        the next can start)."""
        return self.max_active if self.max_active > 0 \
            else self.max_batch * self.effective_pipeline_limit

    def stage_time_s(self, n_decode: int, n_prefill_tokens: int) -> float:
        """One group-pass on one stage."""
        return (self.stage_alpha_s + self.decode_s_per_item * n_decode
                + self.prefill_s_per_token * n_prefill_tokens)

    def decode_roofline_tok_s(self) -> float:
        """Decode-only ceiling: saturated batches, prefill ignored."""
        return self.n_replicas * self.max_batch / \
            self.stage_time_s(self.max_batch, 0)

    def token_roofline_tok_s(self, mean_prompt: float,
                             mean_new_tokens: float) -> float:
        """Effective token ceiling for a request mix.

        Bottleneck-stage busy time per request: one prefill group-pass plus
        ``mean_new_tokens`` shares of a width-``max_batch`` decode pass.
        """
        per_req = (self.stage_time_s(0, int(round(mean_prompt)))
                   + mean_new_tokens
                   * self.stage_time_s(self.max_batch, 0) / self.max_batch)
        return self.n_replicas * mean_new_tokens / per_req

    @classmethod
    def from_cluster(cls, cfg: GPTConfig, cluster: Optional[ClusterSpec]
                     = None, n_replicas: int = 2, g_inter: int = 4,
                     max_batch: int = 8, **kw) -> "ServingModel":
        """Derive the cost coefficients from a GPU spec + calibration.

        Decode is bandwidth/overhead bound (tiny GEMMs reading the whole
        shard's weights and KV); prefill amortizes kernel launches over the
        prompt and runs near the calibrated GEMM efficiency.
        """
        cluster = cluster or summit(1)
        cal = default_calibration()
        params_per_stage = 12 * cfg.n_layer * cfg.hidden ** 2 / g_inter
        peak = cluster.node.gpu.peak_half_flops
        # one token through one stage: 2 flops/param at decode-batch
        # granularity (low kernel efficiency) + the weight read from HBM
        flops = 2.0 * params_per_stage
        decode = cal.compute.time(flops, peak) \
            + 2 * params_per_stage / cal.hbm_bandwidth
        prefill = cal.compute.time(flops, peak, work=flops * 64)
        alpha = cal.kernel_launch_overhead * (cfg.n_layer / g_inter + 2) \
            + cal.nccl.p2p_alpha_intra
        return cls(n_replicas=n_replicas, g_inter=g_inter,
                   max_batch=max_batch, stage_alpha_s=alpha,
                   decode_s_per_item=decode, prefill_s_per_token=prefill,
                   **kw)


@dataclass
class ServingStats:
    """Aggregated outcome of one simulated serving run."""

    horizon_s: float
    offered_req_s: float
    n_arrived: int = 0
    n_admitted: int = 0
    #: rejected because every live replica's admission queue was full
    n_rejected_backpressure: int = 0
    #: rejected because no replica was alive at all (whole cluster down)
    n_rejected_down: int = 0
    n_completed: int = 0
    n_restarts: int = 0
    tokens_out: int = 0
    ttft_s: List[float] = field(default_factory=list)
    tpot_s: List[float] = field(default_factory=list)
    sojourn_s: List[float] = field(default_factory=list)
    concurrency_integral: float = 0.0  #: integral of in-system count dt

    @property
    def n_rejected(self) -> int:
        """All front-door rejections.  Backpressure (queues full) and
        whole-cluster-down are distinct failure modes — one means the
        fleet is undersized, the other that it is absent — so they are
        counted separately and summed here for the legacy view."""
        return self.n_rejected_backpressure + self.n_rejected_down

    @property
    def throughput_tok_s(self) -> float:
        return self.tokens_out / self.horizon_s if self.horizon_s else 0.0

    @property
    def throughput_req_s(self) -> float:
        return self.n_completed / self.horizon_s if self.horizon_s else 0.0

    @property
    def mean_concurrency(self) -> float:
        """Time-averaged number of requests in the system (Little's L)."""
        return self.concurrency_integral / self.horizon_s \
            if self.horizon_s else 0.0

    @property
    def mean_sojourn_s(self) -> float:
        return float(np.mean(self.sojourn_s)) if self.sojourn_s else 0.0

    def ttft_percentile(self, q: float) -> float:
        return float(np.percentile(self.ttft_s, q)) if self.ttft_s else 0.0

    @property
    def mean_tpot_s(self) -> float:
        return float(np.mean(self.tpot_s)) if self.tpot_s else 0.0


class _ReqState:
    """One request's lifecycle inside the simulation."""

    __slots__ = ("rid", "arrival_s", "prompt_len", "new_tokens",
                 "tokens_done", "first_token_s", "last_step_s", "finish_s",
                 "restarts", "done_event")

    def __init__(self, rid: int, arrival_s: float, prompt_len: int,
                 new_tokens: int, done_event=None):
        self.rid = rid
        self.arrival_s = arrival_s
        self.prompt_len = prompt_len
        self.new_tokens = new_tokens
        self.tokens_done = 0
        self.first_token_s: Optional[float] = None
        self.last_step_s = arrival_s
        self.finish_s: Optional[float] = None
        self.restarts = 0
        self.done_event = done_event


class _Replica:
    """One pipeline replica: stage stores + the continuous-batch state."""

    def __init__(self, env: Environment, model: ServingModel, index: int):
        self.env = env
        self.model = model
        self.index = index
        self.alive = True
        self.stores = [Store(env) for _ in range(model.g_inter)]
        self.queue: Deque[_ReqState] = deque()
        self.active: Dict[int, _ReqState] = {}
        self.ready: Deque[_ReqState] = deque()
        self.inflight = 0
        self.procs = []

    @property
    def load(self) -> int:
        return len(self.queue) + len(self.active)

    def outstanding(self) -> List[_ReqState]:
        return list(self.queue) + list(self.active.values())


class _Cluster:
    """Shared router/bookkeeping state for one simulation run."""

    def __init__(self, env: Environment, model: ServingModel,
                 stats: ServingStats, spans: Optional[List[ObsSpan]]):
        self.env = env
        self.model = model
        self.stats = stats
        self.spans = spans
        self.replicas = [_Replica(env, model, i)
                         for i in range(model.n_replicas)]
        self.in_system = 0
        self._conc_mark = 0.0

    # -- Little's law bookkeeping -----------------------------------------
    def _track(self, delta: int) -> None:
        now = self.env.now
        self.stats.concurrency_integral += \
            self.in_system * (now - self._conc_mark)
        self._conc_mark = now
        self.in_system += delta

    def flush_concurrency(self) -> None:
        self._track(0)

    # -- admission ---------------------------------------------------------
    def admit(self, st: _ReqState, forced: bool = False) -> bool:
        """Route to the least-loaded live replica; bounded queue unless
        ``forced`` (failover re-admission keeps its admission)."""
        live = [r for r in self.replicas if r.alive]
        if not live:
            if not forced:  # whole cluster down: drop at the front door
                self.stats.n_rejected_down += 1
            return False
        rep = min(live, key=lambda r: (r.load, r.index))
        if not forced:
            if len(rep.queue) >= self.model.queue_capacity:
                self.stats.n_rejected_backpressure += 1
                return False
            self.stats.n_admitted += 1
            self._track(+1)
        rep.queue.append(st)
        self.pump(rep)
        return True

    # -- scheduling --------------------------------------------------------
    def pump(self, rep: _Replica) -> None:
        """Dispatch groups while the pipeline has room (continuous
        batching: prefills join the moment a batch slot is free)."""
        model = self.model
        while rep.alive and rep.inflight < model.effective_pipeline_limit:
            if rep.queue and len(rep.active) < model.effective_max_active:
                st = rep.queue.popleft()
                rep.active[st.rid] = st
                st.last_step_s = self.env.now
                rep.inflight += 1
                rep.stores[0].put(("prefill", [st]))
            elif rep.ready:
                group = []
                for _ in range(min(len(rep.ready), model.max_batch)):
                    group.append(rep.ready.popleft())
                for st in group:
                    st.last_step_s = self.env.now
                rep.inflight += 1
                rep.stores[0].put(("decode", group))
            else:
                return

    def finish_group(self, rep: _Replica, kind: str,
                     group: List[_ReqState]) -> None:
        now = self.env.now
        rep.inflight -= 1
        for st in group:
            st.tokens_done += 1
            self.stats.tokens_out += 1
            if st.tokens_done == 1:
                st.first_token_s = now
                self.stats.ttft_s.append(now - st.arrival_s)
                self._span(rep, "prefill", st.last_step_s, now, st.rid,
                           "compute")
            else:
                self._span(rep, f"decode{st.tokens_done - 1}",
                           st.last_step_s, now, st.rid, "compute")
            if st.tokens_done >= st.new_tokens:
                st.finish_s = now
                del rep.active[st.rid]
                self.stats.n_completed += 1
                self.stats.sojourn_s.append(now - st.arrival_s)
                if st.new_tokens > 1 and st.first_token_s is not None:
                    self.stats.tpot_s.append(
                        (now - st.first_token_s) / (st.new_tokens - 1))
                self._track(-1)
                self._span(rep, "request", st.arrival_s, now, st.rid,
                           "other")
                if st.done_event is not None and not st.done_event.triggered:
                    st.done_event.succeed()
            else:
                rep.ready.append(st)
        self.pump(rep)

    def _span(self, rep: _Replica, name: str, start: float, end: float,
              rid: int, category: str) -> None:
        if self.spans is not None:
            self.spans.append(ObsSpan(rep.index, "serve", name, start, end,
                                      category=category, microbatch=rid))

    # -- failover ----------------------------------------------------------
    def crash(self, rep: _Replica) -> None:
        """Kill a replica; re-admit every outstanding request elsewhere
        (KV state is lost, so they restart from prefill)."""
        if not rep.alive:
            return
        rep.alive = False
        for proc in rep.procs:
            if proc.is_alive:
                proc.interrupt("replica-crash")
        orphans = rep.outstanding()
        rep.queue.clear()
        rep.active.clear()
        rep.ready.clear()
        rep.inflight = 0
        for st in orphans:
            st.restarts += 1
            self.stats.n_restarts += 1
            st.tokens_done = 0
            st.first_token_s = None
            if not self.admit(st, forced=True):
                # no live replica left: the request is lost
                self._track(-1)


def _stage_proc(env: Environment, cluster: _Cluster, rep: _Replica,
                i: int):
    model = cluster.model
    try:
        while True:
            kind, group = yield rep.stores[i].get()
            if kind == "prefill":
                cost = model.stage_time_s(0, group[0].prompt_len)
            else:
                cost = model.stage_time_s(len(group), 0)
            yield env.timeout(cost)
            if not rep.alive:
                return
            if i + 1 < model.g_inter:
                rep.stores[i + 1].put((kind, group))
            else:
                cluster.finish_group(rep, kind, group)
    except Interrupt:
        return


def _build(env: Environment, model: ServingModel, stats: ServingStats,
           spans: Optional[List[ObsSpan]],
           plan: Optional[FaultPlan]) -> _Cluster:
    cluster = _Cluster(env, model, stats, spans)
    for rep in cluster.replicas:
        for i in range(model.g_inter):
            rep.procs.append(env.process(
                _stage_proc(env, cluster, rep, i),
                name=f"replica{rep.index}-stage{i}"))
    if plan is not None:
        for fault in plan.faults:
            if fault.kind != "crash":
                continue
            rep_idx = fault.rank if fault.rank is not None else 0
            if not 0 <= rep_idx < model.n_replicas:
                raise ValueError(f"crash fault names replica {rep_idx}; "
                                 f"model has {model.n_replicas}")
            at_s = float(fault.tick if fault.tick is not None else 0)

            def _crash_proc(env: Environment, idx: int = rep_idx,
                            t: float = at_s):
                yield env.timeout(t)
                cluster.crash(cluster.replicas[idx])
                if spans is not None:
                    spans.append(ObsSpan(idx, "serve", "replica-crash",
                                         t, env.now, category="fault"))

            env.process(_crash_proc(env),
                        name=f"crash-replica{rep_idx}@{at_s}")
    return cluster


def _request_sizes(cfg_seq_len: int, spec: RequestSpec,
                   rng: np.random.Generator) -> Tuple[int, int]:
    """Same clipping contract as :func:`repro.serve.workload.make_requests`."""
    p = int(min(1 + rng.geometric(1.0 / spec.mean_prompt),
                cfg_seq_len - 1))
    m = int(min(1 + rng.geometric(1.0 / spec.mean_new_tokens),
                cfg_seq_len - p))
    return p, m


def simulate_serving(model: ServingModel, arrivals: ArrivalSpec,
                     horizon_s: float, request_spec: Optional[RequestSpec]
                     = None, seq_len: int = 64,
                     plan: Optional[FaultPlan] = None,
                     spans: Optional[List[ObsSpan]] = None) -> ServingStats:
    """Open-loop run: seeded Poisson/bursty arrivals for ``horizon_s``
    simulated seconds; returns latency/throughput accounting."""
    spec = request_spec or RequestSpec()
    env = Environment()
    stats = ServingStats(horizon_s=horizon_s,
                         offered_req_s=arrivals.rate_per_s)
    cluster = _build(env, model, stats, spans, plan)
    size_rng = np.random.default_rng(spec.seed + 1)
    next_rid = [0]

    def on_arrival(now: float) -> None:
        stats.n_arrived += 1
        p, m = _request_sizes(seq_len, spec, size_rng)
        cluster.admit(_ReqState(next_rid[0], now, p, m))
        next_rid[0] += 1

    env.process(
        poisson_process(env, arrivals.mean_interarrival(),
                        seed=arrivals.seed, on_event=on_arrival,
                        alive=lambda: env.now < horizon_s),
        name="request-arrivals")
    env.run(until=horizon_s)
    # drain what is already in the system so completions are counted
    env.run()
    cluster.flush_concurrency()
    return stats


def simulate_closed_loop(model: ServingModel, n_clients: int,
                         horizon_s: float,
                         request_spec: Optional[RequestSpec] = None,
                         seq_len: int = 64) -> ServingStats:
    """Closed-loop run: ``n_clients`` clients, each keeping exactly one
    request in flight (zero think time) — the textbook setting for
    checking Little's law ``L = X * W``."""
    spec = request_spec or RequestSpec()
    env = Environment()
    stats = ServingStats(horizon_s=horizon_s, offered_req_s=0.0)
    cluster = _build(env, model, stats, None, None)
    size_rng = np.random.default_rng(spec.seed + 2)
    next_rid = [0]

    def _client_proc(env: Environment, cid: int):
        while env.now < horizon_s:
            p, m = _request_sizes(seq_len, spec, size_rng)
            done = env.event()
            st = _ReqState(next_rid[0], env.now, p, m, done_event=done)
            next_rid[0] += 1
            stats.n_arrived += 1
            stats.n_admitted += 1
            cluster._track(+1)
            rep = min([r for r in cluster.replicas if r.alive],
                      key=lambda r: (r.load, r.index))
            rep.queue.append(st)
            cluster.pump(rep)
            yield done

    for cid in range(n_clients):
        env.process(_client_proc(env, cid), name=f"client{cid}")
    env.run(until=horizon_s)
    env.run()
    cluster.flush_concurrency()
    return stats


def sweep_offered_load(model: ServingModel, load_fractions: List[float],
                       horizon_s: float = 60.0,
                       request_spec: Optional[RequestSpec] = None,
                       seq_len: int = 64, seed: int = 0,
                       burst_factor: float = 1.0) -> List[Dict[str, float]]:
    """Throughput/latency at each offered load, as fractions of the
    analytic token roofline — the serving experiment's core table."""
    spec = request_spec or RequestSpec()
    roofline = model.token_roofline_tok_s(spec.mean_prompt,
                                          spec.mean_new_tokens)
    rows = []
    for frac in load_fractions:
        req_rate = frac * roofline / spec.mean_new_tokens
        arrivals = ArrivalSpec(rate_per_s=req_rate, seed=seed,
                               burst_factor=burst_factor)
        stats = simulate_serving(model, arrivals, horizon_s,
                                 request_spec=spec, seq_len=seq_len)
        rows.append({
            "load_fraction": frac,
            "offered_tok_s": req_rate * spec.mean_new_tokens,
            "throughput_tok_s": stats.throughput_tok_s,
            "roofline_tok_s": roofline,
            "ttft_p50_ms": stats.ttft_percentile(50) * 1e3,
            "ttft_p99_ms": stats.ttft_percentile(99) * 1e3,
            "tpot_ms": stats.mean_tpot_s * 1e3,
            "completed": float(stats.n_completed),
            "rejected": float(stats.n_rejected),
            "rejected_backpressure": float(stats.n_rejected_backpressure),
            "rejected_down": float(stats.n_rejected_down),
        })
    return rows
