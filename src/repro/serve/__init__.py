"""Message-driven pipeline-parallel inference serving (both substrates).

* :mod:`repro.serve.engine` — the functional path: continuous-batching
  scheduler driving forward-only Algorithm-2 message passing over
  :class:`~repro.runtime.transport.RankTransport`, token-for-token
  identical to serial :func:`repro.nn.generate`;
* :mod:`repro.serve.workload` — seeded synthetic request mixes and
  (bursty) Poisson arrival specs;
* :mod:`repro.serve.sim` — the DES twin: replicated pipelines, bounded
  admission queues, TTFT/TPOT/p99 metrics, load sweeps, and replica
  failover under injected crashes.
"""

from .engine import PipelineServer, Request
from .sim import (
    ServingModel,
    ServingStats,
    simulate_closed_loop,
    simulate_serving,
    sweep_offered_load,
)
from .workload import ARRIVAL_KINDS, ArrivalSpec, RequestSpec, make_requests

__all__ = [
    "PipelineServer",
    "Request",
    "ServingModel",
    "ServingStats",
    "simulate_closed_loop",
    "simulate_serving",
    "sweep_offered_load",
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "RequestSpec",
    "make_requests",
]
