"""Continuous-batching pipeline-parallel inference on the functional runtime.

The serving twin of :class:`repro.runtime.AxoNNTrainer`: the same
message-driven Algorithm-2 machinery (rank generators suspended on
``yield RECV`` over :class:`~repro.runtime.transport.RankTransport`), but
forward-only and with *dynamic* work — requests arrive with different
prompt lengths and generation budgets, so the unit of scheduling is not a
fixed microbatch but a **group**: either one prefill (the whole prompt in a
single batched forward that fills the request's KV caches) or a batch of
single-token decode steps for whatever requests currently have a token
ready.  Rank 0 runs the continuous-batching scheduler; it admits a new
request into the in-flight batch the moment a slot frees up, rather than
waiting for the whole batch to drain (the Orca-style policy every modern
LLM server uses).

Numerics: each stage is an :class:`~repro.runtime.InferenceStage` built by
the same ``build_layer`` slots as training, decode steps attend over
per-request KV caches, and the final rank samples with the *shared*
:func:`repro.nn.sample_token` from a per-request
``np.random.default_rng(seed)`` stream.  A request therefore receives
bit-identical logits and consumes its RNG in exactly the same order as
``generate(model, ..., rng=np.random.default_rng(seed))`` — outputs are
token-for-token identical to the serial path, whatever the batching
policy, which the equivalence tests assert directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import GPTConfig, sample_token
from ..obs import RuntimeTracer
from ..runtime.stage import InferenceStage
from ..runtime.transport import RECV, RankTransport

__all__ = ["Request", "PipelineServer", "TAG_ACT", "TAG_TOKEN", "TAG_STOP"]

TAG_ACT = "serve-act"      #: downstream boundary-activation group
TAG_TOKEN = "serve-token"  #: sampled tokens, last rank -> scheduler
TAG_STOP = "serve-stop"    #: shutdown cascade once all requests finished


@dataclass(frozen=True)
class Request:
    """One generation request (the serving analogue of a `generate` call)."""

    rid: int
    prompt: np.ndarray
    max_new_tokens: int
    temperature: float = 1.0
    top_k: Optional[int] = None
    greedy: bool = False
    seed: int = 0

    def validate(self, cfg: GPTConfig) -> None:
        prompt = np.asarray(self.prompt)
        if prompt.ndim != 1 or prompt.size == 0:
            raise ValueError(f"request {self.rid}: prompt must be a "
                             "non-empty 1-D token array")
        if prompt.max() >= cfg.vocab_size or prompt.min() < 0:
            raise ValueError(f"request {self.rid}: prompt token outside "
                             "vocabulary")
        if self.max_new_tokens < 0:
            raise ValueError(f"request {self.rid}: max_new_tokens must "
                             "be >= 0")
        if prompt.size + self.max_new_tokens > cfg.seq_len:
            raise ValueError(
                f"request {self.rid}: prompt ({prompt.size}) + "
                f"max_new_tokens ({self.max_new_tokens}) exceeds seq_len "
                f"{cfg.seq_len}; the KV-cached pipeline serves full "
                "sequences up to the model context")
        if self.temperature <= 0:
            raise ValueError(f"request {self.rid}: temperature must be "
                             "positive")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError(f"request {self.rid}: top_k must be >= 1")


class PipelineServer:
    """Serve batches of requests over ``g_inter`` pipeline ranks.

    * ``max_batch`` — decode-group width: how many single-token decode
      steps ride one pipeline pass.  ``max_batch=1`` degenerates to
      token-at-a-time passes; outputs are identical either way.
    * ``pipeline_limit`` — in-flight group cap (default ``g_inter``): how
      many groups may be travelling the pipeline simultaneously; keeps
      every stage busy without unbounded buffering.
    * ``max_active`` — KV-resident request cap, i.e. the continuous-batch
      size (default ``max_batch * pipeline_limit`` — enough resident
      requests to keep every pipeline slot filled with a full-width group,
      since a request's next token depends on its previous one finishing
      the whole pipeline).
    * ``tracer`` — optional :class:`~repro.obs.RuntimeTracer`; each request
      emits ``request``/``prefill``/``decode{t}`` spans on the ``serve``
      stream, so ``python -m repro trace`` tooling works unchanged.
    * ``recorder`` — optional protocol recorder forwarded to the
      transport (see :mod:`repro.analysis.protocol`).
    """

    def __init__(self, cfg: GPTConfig, g_inter: int = 1,
                 max_batch: int = 8, pipeline_limit: Optional[int] = None,
                 max_active: Optional[int] = None,
                 tracer: Optional[RuntimeTracer] = None,
                 recorder: Any = None):
        if g_inter < 1:
            raise ValueError("g_inter must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_active is not None and max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.cfg = cfg
        self.g_inter = g_inter
        self.max_batch = max_batch
        self.pipeline_limit = max(1, pipeline_limit if pipeline_limit
                                  is not None else g_inter)
        self.max_active = max_active if max_active is not None \
            else max_batch * self.pipeline_limit
        self.tracer = tracer
        self.recorder = recorder
        self.stages = [InferenceStage(cfg, i, g_inter)
                       for i in range(g_inter)]

    # -- public API --------------------------------------------------------
    def serve(self, requests: Sequence[Request]) -> Dict[int, np.ndarray]:
        """Serve ``requests``; returns rid -> full sequence (prompt +
        generated), exactly what serial ``generate`` would return."""
        reqs: Dict[int, Request] = {}
        for req in requests:
            if req.rid in reqs:
                raise ValueError(f"duplicate request id {req.rid}")
            req.validate(self.cfg)
            reqs[req.rid] = req
        results: Dict[int, List[int]] = {
            req.rid: [] for req in requests if req.max_new_tokens > 0}
        order = [req for req in requests if req.max_new_tokens > 0]
        if order:
            if self.g_inter == 1:
                self._serve_local(order, results)
            else:
                transport = RankTransport(self.g_inter,
                                          recorder=self.recorder)
                programs: Dict[int, Generator] = {
                    0: self._scheduler_program(transport, reqs, order,
                                               results)}
                for rank in range(1, self.g_inter - 1):
                    programs[rank] = self._mid_program(rank, transport, reqs)
                programs[self.g_inter - 1] = self._tail_program(
                    transport, reqs)
                transport.run(programs)
        return {
            req.rid: np.concatenate([
                np.asarray(req.prompt, dtype=np.int64),
                np.asarray(results.get(req.rid, []), dtype=np.int64)])
            for req in requests
        }

    # -- span helpers ------------------------------------------------------
    def _now(self) -> float:
        return self.tracer.now() if self.tracer is not None and \
            self.tracer.enabled else 0.0

    def _emit(self, name: str, start: float, rid: int,
              category: str = "compute") -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(0, "serve", name, start, self.tracer.now(),
                               category=category, microbatch=rid)

    # -- rank programs -----------------------------------------------------
    def _scheduler_program(self, transport: RankTransport,
                           reqs: Dict[int, Request],
                           order: List[Request],
                           results: Dict[int, List[int]]) -> Generator:
        """Rank 0: continuous-batching scheduler + first pipeline shard."""
        stage = self.stages[0]
        pending = deque(order)
        active: set = set()
        ready: deque = deque()  # (rid, last sampled token)
        inflight = 0
        seq = 0
        n_done = 0
        total = len(order)
        admit_t: Dict[int, float] = {}
        step_t: Dict[int, float] = {}
        n_tokens: Dict[int, int] = {}

        def pump() -> None:
            nonlocal inflight, seq
            while inflight < self.pipeline_limit:
                if pending and len(active) < self.max_active:
                    req = pending.popleft()
                    active.add(req.rid)
                    stage.start_request(req.rid)
                    admit_t[req.rid] = step_t[req.rid] = self._now()
                    n_tokens[req.rid] = 0
                    prompt = np.asarray(req.prompt,
                                        dtype=np.int64)[None, :]
                    act = stage.forward(req.rid, prompt)
                    transport.send(0, 1, TAG_ACT, seq, [(req.rid, act)])
                elif ready:
                    items: List[Tuple[int, np.ndarray]] = []
                    for _ in range(min(len(ready), self.max_batch)):
                        rid, tok = ready.popleft()
                        step_t[rid] = self._now()
                        act = stage.forward(
                            rid, np.asarray([[tok]], dtype=np.int64))
                        items.append((rid, act))
                    transport.send(0, 1, TAG_ACT, seq, items)
                else:
                    return
                seq += 1
                inflight += 1

        pump()
        while n_done < total:
            pkt = yield RECV
            inflight -= 1
            for rid, tok, done in pkt.data:
                results[rid].append(tok)
                t = n_tokens[rid] = n_tokens[rid] + 1
                if t == 1:
                    self._emit("prefill", step_t[rid], rid)
                else:
                    self._emit(f"decode{t - 1}", step_t[rid], rid)
                if done:
                    active.discard(rid)
                    stage.finish_request(rid)
                    n_done += 1
                    self._emit("request", admit_t[rid], rid,
                               category="other")
                else:
                    ready.append((rid, tok))
            pump()
        transport.send(0, 1, TAG_STOP, 0, None)

    def _mid_program(self, rank: int, transport: RankTransport,
                     reqs: Dict[int, Request]) -> Generator:
        """Interior rank: forward-only relay with per-request KV caches."""
        stage = self.stages[rank]
        counts: Dict[int, int] = {}
        while True:
            pkt = yield RECV
            if pkt.tag == TAG_STOP:
                transport.send(rank, rank + 1, TAG_STOP, 0, None)
                return
            items: List[Tuple[int, np.ndarray]] = []
            for rid, act in pkt.data:
                if rid not in counts:
                    stage.start_request(rid)
                    counts[rid] = 0
                counts[rid] += 1
                out = stage.forward(rid, act)
                if counts[rid] >= reqs[rid].max_new_tokens:
                    stage.finish_request(rid)
                    del counts[rid]
                items.append((rid, out))
            transport.send(rank, rank + 1, TAG_ACT, pkt.microbatch, items)

    def _tail_program(self, transport: RankTransport,
                      reqs: Dict[int, Request]) -> Generator:
        """Last rank: final shard + per-request sampling."""
        rank = self.g_inter - 1
        stage = self.stages[rank]
        counts: Dict[int, int] = {}
        rngs: Dict[int, np.random.Generator] = {}
        while True:
            pkt = yield RECV
            if pkt.tag == TAG_STOP:
                return
            out: List[Tuple[int, int, bool]] = []
            for rid, act in pkt.data:
                req = reqs[rid]
                if rid not in counts:
                    stage.start_request(rid)
                    counts[rid] = 0
                    rngs[rid] = np.random.default_rng(req.seed)
                counts[rid] += 1
                logits = stage.forward(rid, act)
                tok = sample_token(logits[0, -1], req.temperature,
                                   req.top_k, rngs[rid], req.greedy)
                done = counts[rid] >= req.max_new_tokens
                if done:
                    stage.finish_request(rid)
                    del counts[rid], rngs[rid]
                out.append((rid, tok, done))
            transport.send(rank, 0, TAG_TOKEN, pkt.microbatch, out)

    # -- g_inter == 1 ------------------------------------------------------
    def _serve_local(self, order: List[Request],
                     results: Dict[int, List[int]]) -> None:
        """Single-rank serving: the same stage/KV-cache/sampler machinery
        without a transport (the pipeline of depth one)."""
        stage = self.stages[0]
        for req in order:
            admit = self._now()
            stage.start_request(req.rid)
            rng = np.random.default_rng(req.seed)
            context = np.asarray(req.prompt, dtype=np.int64)[None, :]
            for t in range(req.max_new_tokens):
                t0 = self._now()
                logits = stage.forward(req.rid, context)
                tok = sample_token(logits[0, -1], req.temperature,
                                   req.top_k, rng, req.greedy)
                results[req.rid].append(tok)
                self._emit("prefill" if t == 0 else f"decode{t}", t0,
                           req.rid)
                context = np.asarray([[tok]], dtype=np.int64)
            stage.finish_request(req.rid)
            self._emit("request", admit, req.rid, category="other")
