"""SLO classes, priority queueing, and load-shedding admission control.

Shared by both substrates: the elastic DES and the functional
:class:`~repro.fleet.engine.FleetServer` push admitted requests through
the same :class:`PriorityQueue` and run the same :class:`AdmissionController`
verdict logic, so a scheduling-policy change cannot silently diverge the
two.  Everything here is deterministic: ties inside a priority class break
by admission sequence number (FIFO), and the shed decision is a pure
function of the queue state and the class's wait budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

__all__ = ["SLOClass", "DEFAULT_SLO_CLASSES", "PriorityQueue",
           "AdmissionController", "ADMIT", "SHED", "BACKPRESSURE", "DOWN"]

T = TypeVar("T")

#: admission verdicts
ADMIT = "admit"
SHED = "shed"                  #: rejected by SLO-aware load shedding
BACKPRESSURE = "backpressure"  #: rejected because the bounded queue is full
DOWN = "down"                  #: rejected because no replica is alive


@dataclass(frozen=True)
class SLOClass:
    """A service tier: scheduling priority plus latency budgets.

    ``priority`` orders the admission queue (lower runs first);
    ``ttft_slo_s`` is the attainment target reported per class;
    ``max_wait_s`` is the shed budget — a request whose *estimated* queue
    wait already exceeds it is rejected at the front door rather than
    admitted into a queue it cannot clear in time (shedding before the
    p99 collapses, instead of after).
    """

    name: str = "standard"
    priority: int = 1
    ttft_slo_s: float = 2.0
    max_wait_s: float = float("inf")

    def __post_init__(self):
        if self.priority < 0:
            raise ValueError("priority must be >= 0")
        if self.ttft_slo_s <= 0 or self.max_wait_s <= 0:
            raise ValueError("ttft_slo_s and max_wait_s must be positive")


#: the two-tier default: interactive traffic preempts batch and sheds early
DEFAULT_SLO_CLASSES = (
    SLOClass(name="interactive", priority=0, ttft_slo_s=1.0, max_wait_s=5.0),
    SLOClass(name="batch", priority=2, ttft_slo_s=30.0),
)


class PriorityQueue(Generic[T]):
    """Stable priority queue: (priority, admission sequence) heap order."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, T]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, item: T, priority: int) -> None:
        heapq.heappush(self._heap, (priority, self._seq, item))
        self._seq += 1

    def push_front(self, item: T, priority: int) -> None:
        """Re-admit ahead of same-priority peers (failover requeues)."""
        self._seq += 1
        heapq.heappush(self._heap, (priority, -self._seq, item))

    def pop(self) -> T:
        return heapq.heappop(self._heap)[2]

    def peek_priority(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def count_at_or_above(self, priority: int) -> int:
        """Queued items that would run before a new item of ``priority``
        (equal or more-urgent priority — lower value is more urgent)."""
        return sum(1 for p, _, _ in self._heap if p <= priority)

    def drain(self) -> List[T]:
        items = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
        return items


class AdmissionController:
    """Front-door verdicts: admit, shed (SLO), backpressure, or down.

    ``queue_capacity`` bounds the *total* queue (backpressure, the serve.sim
    semantics); the shed test estimates this request's queue wait as
    ``depth_ahead / fleet_service_rate`` — work ahead of it at equal or
    higher priority divided by the live fleet's aggregate admission rate —
    and rejects when that estimate blows the class's ``max_wait_s`` budget.
    """

    def __init__(self, classes: Tuple[SLOClass, ...] = DEFAULT_SLO_CLASSES,
                 queue_capacity: int = 64):
        if not classes:
            raise ValueError("need at least one SLO class")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.classes: Dict[str, SLOClass] = {c.name: c for c in classes}
        if len(self.classes) != len(classes):
            raise ValueError("duplicate SLO class names")
        self.queue_capacity = queue_capacity

    def slo_class(self, name: str) -> SLOClass:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(f"unknown SLO class {name!r}; have "
                           f"{sorted(self.classes)}") from None

    def verdict(self, cls: SLOClass, queue_depth: int, depth_ahead: int,
                n_live: int, fleet_service_rate: float) -> str:
        """Admission decision for one arriving request.

        ``queue_depth`` is the whole queue, ``depth_ahead`` only the work
        that would run before this request (same or better priority).
        """
        if n_live <= 0:
            return DOWN
        if queue_depth >= self.queue_capacity:
            return BACKPRESSURE
        if fleet_service_rate > 0 and cls.max_wait_s != float("inf"):
            est_wait_s = depth_ahead / fleet_service_rate
            if est_wait_s > cls.max_wait_s:
                return SHED
        return ADMIT
