"""Elastic serving on the functional runtime: disaggregation + autoscaling.

Two pieces, both built from the real message-driven machinery rather than
a model of it:

* :class:`DisaggPipelineServer` — prefill/decode disaggregation as an
  explicit wire protocol.  A *prefill pool* of ``g_prefill`` ranks and a
  *decode pool* of ``g_decode`` ranks each shard the full network
  (independently — the pools may have different depths).  A request's
  prompt flows down the prefill pipe once; every prefill rank exports its
  slice of the KV cache and ships it to the scheduler (``TAG_KV``), which
  re-shards the merged cache down the decode pipe in a single ingest
  message (``TAG_INGEST``).  Decode passes then run entirely inside the
  decode pool.  Because the ingest travels the same FIFO channels as the
  decode traffic, a request's first decode pass can never overtake its own
  KV — the property the model checker proves at the smoke configuration.
  Outputs are token-for-token identical to :class:`~repro.serve.engine.
  PipelineServer` (and hence to serial ``generate``): the prefill pipe
  produces bit-identical logits, and the request's whole RNG stream is
  consumed on the decode tail.

* :class:`FleetServer` — an elastic fleet of
  :class:`~repro.serve.engine.PipelineServer` replicas driven round by
  round: arrivals from a seeded trace (see
  :meth:`repro.serve.ArrivalSpec.sample_times`) pass SLO admission, an
  :class:`~repro.fleet.policy.AutoscalerPolicy` observes the fleet between
  rounds and scales it, and *both* planned scale-down and injected crashes
  decommission a replica through one code path
  (:meth:`FleetServer._decommission`), re-admitting outstanding requests
  under a :class:`~repro.runtime.transport.RankFailure` — the resilience
  layer's failure carrier — so retirement is provably just a crash the
  scheduler knew about in advance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import GPTConfig, sample_token
from ..obs import RuntimeTracer
from ..resilience import FaultPlan
from ..runtime.stage import InferenceStage
from ..runtime.transport import RECV, RankFailure, RankTransport
from ..serve.engine import (PipelineServer, Request, TAG_ACT, TAG_STOP,
                            TAG_TOKEN)
from .policy import AutoscalerPolicy, FleetObservation, ScaleEvent
from .slo import (ADMIT, AdmissionController, BACKPRESSURE, DOWN,
                  PriorityQueue, SHED, SLOClass)

__all__ = ["DisaggPipelineServer", "FleetServer", "FleetRunReport",
           "TAG_KV", "TAG_INGEST", "TAG_DEC"]

TAG_KV = "fleet-kv"          #: prefill rank -> scheduler: exported KV slice
TAG_INGEST = "fleet-ingest"  #: scheduler -> decode pipe: merged KV + logits
TAG_DEC = "fleet-dec"        #: scheduler -> decode pool: next-token group


class DisaggPipelineServer:
    """Disaggregated prefill/decode serving over one transport world.

    Ranks ``0..g_prefill-1`` form the prefill pool (rank 0 doubles as the
    global scheduler, exactly like :class:`~repro.serve.engine.
    PipelineServer`), ranks ``g_prefill..g_prefill+g_decode-1`` the decode
    pool.  Knobs mirror the unified server: ``max_batch`` bounds decode
    group width, ``pipeline_limit`` the decode pool's in-flight groups
    (default ``g_decode``), ``prefill_limit`` concurrent prefills in the
    prefill pipe (default ``g_prefill``), ``max_active`` KV-resident
    requests in the decode pool.
    """

    def __init__(self, cfg: GPTConfig, g_prefill: int = 1,
                 g_decode: int = 1, max_batch: int = 8,
                 pipeline_limit: Optional[int] = None,
                 prefill_limit: Optional[int] = None,
                 max_active: Optional[int] = None,
                 recorder: Any = None):
        if g_prefill < 1 or g_decode < 1:
            raise ValueError("g_prefill and g_decode must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.cfg = cfg
        self.g_prefill = g_prefill
        self.g_decode = g_decode
        self.n_ranks = g_prefill + g_decode
        self.max_batch = max_batch
        self.pipeline_limit = max(1, pipeline_limit if pipeline_limit
                                  is not None else g_decode)
        self.prefill_limit = max(1, prefill_limit if prefill_limit
                                 is not None else g_prefill)
        self.max_active = max_active if max_active is not None \
            else max_batch * self.pipeline_limit
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.recorder = recorder
        self.prefill_stages = [InferenceStage(cfg, i, g_prefill)
                               for i in range(g_prefill)]
        self.decode_stages = [InferenceStage(cfg, i, g_decode)
                              for i in range(g_decode)]

    # -- public API --------------------------------------------------------
    def serve(self, requests: Sequence[Request]) -> Dict[int, np.ndarray]:
        """Serve ``requests``; rid -> full sequence, identical to the
        unified :meth:`PipelineServer.serve` (and serial ``generate``)."""
        reqs: Dict[int, Request] = {}
        for req in requests:
            if req.rid in reqs:
                raise ValueError(f"duplicate request id {req.rid}")
            req.validate(self.cfg)
            reqs[req.rid] = req
        results: Dict[int, List[int]] = {
            req.rid: [] for req in requests if req.max_new_tokens > 0}
        order = [req for req in requests if req.max_new_tokens > 0]
        if order:
            transport = RankTransport(self.n_ranks, recorder=self.recorder)
            programs: Dict[int, Generator] = {
                0: self._scheduler_program(transport, reqs, order, results)}
            for r in range(1, self.g_prefill):
                programs[r] = self._prefill_program(r, transport)
            for j in range(self.g_decode):
                programs[self.g_prefill + j] = self._decode_program(
                    j, transport, reqs)
            transport.run(programs)
        return {
            req.rid: np.concatenate([
                np.asarray(req.prompt, dtype=np.int64),
                np.asarray(results.get(req.rid, []), dtype=np.int64)])
            for req in requests
        }

    # -- rank programs -----------------------------------------------------
    def _scheduler_program(self, transport: RankTransport,
                           reqs: Dict[int, Request],
                           order: List[Request],
                           results: Dict[int, List[int]]) -> Generator:
        """Rank 0: global scheduler + first prefill shard.

        Owns all flow control: starts prefills (bounded by
        ``prefill_limit``), collects the per-rank KV pieces, merges them,
        and drives the decode pool with ingest and decode groups (bounded
        by ``pipeline_limit``/``max_active``).
        """
        P, D = self.g_prefill, self.g_decode
        stage = self.prefill_stages[0]
        pending = deque(order)
        kv_parts: Dict[int, Dict[int, dict]] = {}   # rid -> rank -> blocks
        last_logits: Dict[int, np.ndarray] = {}
        ingest_ready: deque = deque()  # (rid, pos, merged blocks, logits)
        active: set = set()            # rids KV-resident in the decode pool
        ready: deque = deque()         # (rid, last token) awaiting a pass
        prefill_inflight = 0
        decode_inflight = 0
        seq = 0
        n_done = 0
        total = len(order)

        def pump() -> None:
            nonlocal prefill_inflight, decode_inflight, seq
            # feed the prefill pipe (bounded so exported KV doesn't pile up)
            while (pending and prefill_inflight < self.prefill_limit
                   and len(ingest_ready) < self.max_active):
                req = pending.popleft()
                stage.start_request(req.rid)
                prompt = np.asarray(req.prompt, dtype=np.int64)[None, :]
                out = stage.forward(req.rid, prompt)
                pos, piece = stage.export_kv(req.rid)
                stage.finish_request(req.rid)
                if P == 1:
                    ingest_ready.append((req.rid, pos, piece,
                                         out[0, -1].copy()))
                else:
                    kv_parts[req.rid] = {0: piece}
                    transport.send(0, 1, TAG_ACT, seq, [(req.rid, out)])
                    seq += 1
                    prefill_inflight += 1
            # feed the decode pipe: ingests first (new work), then decodes
            while decode_inflight < self.pipeline_limit:
                if ingest_ready and len(active) < self.max_active:
                    batch = []
                    while (ingest_ready and len(batch) < self.max_batch
                           and len(active) < self.max_active):
                        rid, pos, blocks, logits = ingest_ready.popleft()
                        active.add(rid)
                        batch.append((rid, pos, blocks, logits))
                    transport.send(0, P, TAG_INGEST, seq, batch)
                elif ready:
                    items: List[Tuple[int, int]] = []
                    for _ in range(min(len(ready), self.max_batch)):
                        items.append(ready.popleft())
                    transport.send(0, P, TAG_DEC, seq, items)
                else:
                    return
                seq += 1
                decode_inflight += 1

        pump()
        while n_done < total:
            pkt = yield RECV
            if pkt.tag == TAG_KV:
                for rid, src, piece, logits in pkt.data:
                    parts = kv_parts[rid]
                    parts[src] = piece
                    if logits is not None:
                        last_logits[rid] = logits
                    if len(parts) == P:
                        prefill_inflight -= 1
                        merged: Dict[int, tuple] = {}
                        for p in parts.values():
                            merged.update(p)
                        ingest_ready.append(
                            (rid, int(np.asarray(reqs[rid].prompt).size),
                             merged, last_logits.pop(rid)))
                        del kv_parts[rid]
            else:  # TAG_TOKEN
                decode_inflight -= 1
                for rid, tok, done in pkt.data:
                    results[rid].append(tok)
                    if done:
                        active.discard(rid)
                        n_done += 1
                    else:
                        ready.append((rid, tok))
            pump()
        if P > 1:
            transport.send(0, 1, TAG_STOP, 0, None)
        transport.send(0, P, TAG_STOP, 0, None)

    def _prefill_program(self, r: int,
                         transport: RankTransport) -> Generator:
        """Prefill rank ``r`` >= 1: one prompt pass per request, then the
        KV slice goes home to the scheduler and the request is gone."""
        stage = self.prefill_stages[r]
        is_tail = r == self.g_prefill - 1
        while True:
            pkt = yield RECV
            if pkt.tag == TAG_STOP:
                if not is_tail:
                    transport.send(r, r + 1, TAG_STOP, 0, None)
                return
            kv_items = []
            act_items = []
            for rid, act in pkt.data:
                stage.start_request(rid)
                out = stage.forward(rid, act)
                _, piece = stage.export_kv(rid)
                stage.finish_request(rid)
                kv_items.append((rid, r, piece,
                                 out[0, -1].copy() if is_tail else None))
                if not is_tail:
                    act_items.append((rid, out))
            if not is_tail:
                transport.send(r, r + 1, TAG_ACT, pkt.microbatch, act_items)
            transport.send(r, 0, TAG_KV, pkt.microbatch, kv_items)

    def _decode_program(self, j: int, transport: RankTransport,
                        reqs: Dict[int, Request]) -> Generator:
        """Decode rank ``j`` (world rank ``g_prefill + j``).

        Ingest messages seed the local KV shard (each rank peels off the
        slots it owns and forwards the rest); the tail additionally samples
        the request's *first* token from the handed-off prefill logits —
        the request's RNG stream lives entirely here, which is what makes
        the output bit-identical to the unified server.
        """
        P, D = self.g_prefill, self.g_decode
        rank = P + j
        stage = self.decode_stages[j]
        is_last = j == D - 1
        left: Dict[int, int] = {}   # decode passes still to flow through
        rngs: Dict[int, np.random.Generator] = {}
        while True:
            pkt = yield RECV
            if pkt.tag == TAG_STOP:
                if not is_last:
                    transport.send(rank, rank + 1, TAG_STOP, 0, None)
                return
            if pkt.tag == TAG_INGEST:
                out: List[Tuple[int, int, bool]] = []
                for rid, pos, blocks, logits in pkt.data:
                    stage.import_kv(rid, pos, blocks)
                    left[rid] = reqs[rid].max_new_tokens - 1
                    if is_last:
                        req = reqs[rid]
                        rngs[rid] = np.random.default_rng(req.seed)
                        tok = sample_token(logits, req.temperature,
                                           req.top_k, rngs[rid], req.greedy)
                        done = left[rid] == 0
                        out.append((rid, tok, done))
                        if done:
                            stage.finish_request(rid)
                            del left[rid], rngs[rid]
                    elif left[rid] == 0:
                        stage.finish_request(rid)
                        del left[rid]
                if is_last:
                    transport.send(rank, 0, TAG_TOKEN, pkt.microbatch, out)
                else:
                    transport.send(rank, rank + 1, TAG_INGEST,
                                   pkt.microbatch, pkt.data)
                continue
            # a decode group: first rank embeds raw tokens, the rest relay
            # boundary activations; the tail samples.
            items: List[Tuple[int, np.ndarray]] = []
            out = []
            for rid, payload in pkt.data:
                x = np.asarray([[payload]], dtype=np.int64) if j == 0 \
                    else payload
                y = stage.forward(rid, x)
                left[rid] -= 1
                if is_last:
                    req = reqs[rid]
                    tok = sample_token(y[0, -1], req.temperature,
                                       req.top_k, rngs[rid], req.greedy)
                    done = left[rid] == 0
                    out.append((rid, tok, done))
                else:
                    items.append((rid, y))
                if left[rid] == 0:
                    stage.finish_request(rid)
                    del left[rid]
                    if is_last:
                        del rngs[rid]
            if is_last:
                transport.send(rank, 0, TAG_TOKEN, pkt.microbatch, out)
            else:
                transport.send(rank, rank + 1, TAG_ACT, pkt.microbatch,
                               items)


# ---------------------------------------------------------------------------
# Elastic fleet of unified replicas
# ---------------------------------------------------------------------------

@dataclass
class _FunctionalReplica:
    """Lifecycle record of one fleet member."""

    id: int
    state: str                     #: provisioning | serving | draining | dead
    cold_remaining: int
    server: Optional[PipelineServer] = None
    backlog: deque = field(default_factory=deque)

    @property
    def alive(self) -> bool:
        return self.state in ("serving", "draining")


@dataclass
class FleetRunReport:
    """Everything a :meth:`FleetServer.run` produced."""

    results: Dict[int, np.ndarray]
    events: List[ScaleEvent]
    rounds: int
    replica_rounds: int            #: paid capacity (functional analogue of
    n_arrived: int = 0             #: replica-seconds in the DES)
    n_admitted: int = 0
    n_completed: int = 0
    n_shed: int = 0
    n_backpressure: int = 0
    n_down: int = 0
    n_readmitted: int = 0
    failures: List[RankFailure] = field(default_factory=list)
    max_replicas_seen: int = 0

    @property
    def n_lost(self) -> int:
        return self.n_admitted - self.n_completed

    def replica_counts(self) -> List[Tuple[str, int]]:
        return [(e.kind, e.n_to) for e in self.events]


class FleetServer:
    """Round-driven elastic fleet of unified pipeline replicas.

    Each *round* spans ``round_s`` of trace time: arrivals within the
    window face SLO admission, the policy observes the fleet and scales
    it, cold starts tick down, queued requests are dispatched to the
    least-loaded serving replica, and every live replica serves up to
    ``serve_per_round`` of its backlog with a real
    :class:`~repro.serve.engine.PipelineServer` pass over RankTransport.

    ``fault_plan`` may schedule ``crash`` and ``retire`` faults against
    replica ids (``Fault(kind=..., rank=replica_id, tick=round)``); both
    funnel into :meth:`_decommission`, which re-admits the victim's
    outstanding backlog under a :class:`RankFailure` — the shared failure
    path the tests pin down.
    """

    def __init__(self, cfg: GPTConfig, policy: AutoscalerPolicy, *,
                 g_inter: int = 2, max_batch: int = 4,
                 round_s: float = 1.0, serve_per_round: int = 4,
                 cold_start_rounds: int = 1,
                 backlog_limit: Optional[int] = None,
                 admission: Optional[AdmissionController] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 tracer: Optional[RuntimeTracer] = None,
                 max_rounds: int = 10_000):
        if round_s <= 0 or serve_per_round < 1 or cold_start_rounds < 0:
            raise ValueError("round_s must be positive, serve_per_round "
                             ">= 1, cold_start_rounds >= 0")
        #: how far ahead a replica may own queued work; > serve_per_round
        #: means backlogs survive round boundaries, so a decommissioned
        #: replica really does hold requests to re-admit
        self.backlog_limit = backlog_limit if backlog_limit is not None \
            else 2 * serve_per_round
        if self.backlog_limit < serve_per_round:
            raise ValueError("backlog_limit must be >= serve_per_round")
        self.cfg = cfg
        self.policy = policy
        self.g_inter = g_inter
        self.max_batch = max_batch
        self.round_s = round_s
        self.serve_per_round = serve_per_round
        self.cold_start_rounds = cold_start_rounds
        self.admission = admission or AdmissionController(
            classes=(SLOClass(),))
        self.fault_plan = fault_plan or FaultPlan()
        self.tracer = tracer
        self.max_rounds = max_rounds

    # -- shared decommission path (scale-down AND crash) -------------------
    def _decommission(self, rep: _FunctionalReplica, kind: str,
                      round_idx: int, queue: PriorityQueue,
                      priorities: Dict[int, int],
                      report: FleetRunReport) -> None:
        """Remove ``rep`` from the fleet; re-admit whatever it still owed.

        This is the one exit for replicas: graceful retirement arrives
        with an empty backlog, a crash (or forced retire) with outstanding
        requests — either way the bookkeeping, the re-admission, and the
        failure record are identical.
        """
        outstanding = list(rep.backlog)
        rep.backlog.clear()
        rep.state = "dead"
        rep.server = None
        if outstanding:
            failure = RankFailure(
                f"replica {rep.id} {kind} with {len(outstanding)} "
                "outstanding requests", dead=[rep.id],
                detected_at=round_idx)
            report.failures.append(failure)
            for req in outstanding:  # head of queue: they already waited
                queue.push_front(req, priorities[req.rid])
            report.n_readmitted += len(outstanding)
        self._span(rep.id, kind, round_idx)

    def _span(self, replica_id: int, name: str, round_idx: int) -> None:
        if self.tracer is not None and self.tracer.enabled:
            t0 = round_idx * self.round_s
            self.tracer.record(replica_id, "fleet", name, t0,
                               t0 + self.round_s, category="recovery")

    # -- the run loop ------------------------------------------------------
    def run(self, trace: Sequence[Tuple[float, Request]],
            classes: Optional[Dict[int, str]] = None) -> FleetRunReport:
        """Serve a timed ``[(arrival_s, request), ...]`` trace to drain.

        ``classes`` maps rid -> SLO class name (defaults to the admission
        controller's first class).  Returns the merged results — every
        admitted request's full sequence, regardless of how many replicas
        it bounced through.
        """
        self.policy.reset()
        trace = sorted(trace, key=lambda tr: tr[0])
        default_cls = next(iter(self.admission.classes))
        classes = classes or {}
        priorities: Dict[int, int] = {}
        queue: PriorityQueue = PriorityQueue()
        replicas: List[_FunctionalReplica] = []
        report = FleetRunReport(results={}, events=[], rounds=0,
                                replica_rounds=0)
        faults_by_round: Dict[int, List] = {}
        for f in list(self.fault_plan.crashes()) + \
                list(self.fault_plan.retires()):
            faults_by_round.setdefault(f.tick, []).append(f)

        def spawn(round_idx: int, reason: str) -> _FunctionalReplica:
            rep = _FunctionalReplica(
                id=len(replicas), state="provisioning",
                cold_remaining=self.cold_start_rounds)
            if rep.cold_remaining == 0:
                rep.state = "serving"
                rep.server = self._build_server()
            replicas.append(rep)
            self._span(rep.id, f"spawn:{reason}", round_idx)
            return rep

        def fleet_counts() -> Tuple[int, int, int]:
            live = sum(r.state == "serving" for r in replicas)
            prov = sum(r.state == "provisioning" for r in replicas)
            drain = sum(r.state == "draining" for r in replicas)
            return live, prov, drain

        spawn(0, "initial")
        trace_i = 0
        admitted_rids: set = set()
        served_last = capacity_last = 0
        round_idx = 0
        while round_idx < self.max_rounds:
            now = round_idx * self.round_s
            # 1. arrivals in [now, now + round_s) hit the front door
            n_arrived_round = 0
            while trace_i < len(trace) and \
                    trace[trace_i][0] < now + self.round_s:
                _, req = trace[trace_i]
                trace_i += 1
                n_arrived_round += 1
                report.n_arrived += 1
                cls = self.admission.slo_class(
                    classes.get(req.rid, default_cls))
                live, _, _ = fleet_counts()
                depth = len(queue) + sum(len(r.backlog) for r in replicas
                                         if r.alive)
                ahead = depth  # priority queue: conservative estimate
                rate = live * self.serve_per_round / self.round_s
                verdict = self.admission.verdict(cls, depth, ahead,
                                                 max(live, 1), rate)
                if verdict == ADMIT:
                    priorities[req.rid] = cls.priority
                    queue.push(req, cls.priority)
                    admitted_rids.add(req.rid)
                    report.n_admitted += 1
                elif verdict == SHED:
                    report.n_shed += 1
                elif verdict == BACKPRESSURE:
                    report.n_backpressure += 1
                else:
                    report.n_down += 1
            # 2. scheduled faults: crash now, retire = forced scale-down
            for f in faults_by_round.get(round_idx, []):
                if f.rank is None or f.rank >= len(replicas):
                    continue
                rep = replicas[f.rank]
                if not rep.alive:
                    continue
                live, prov, drain = fleet_counts()
                self._decommission(rep, f.kind, round_idx, queue,
                                   priorities, report)
                report.events.append(ScaleEvent(
                    t_s=now, kind="crash" if f.kind == "crash" else "down",
                    n_from=live + prov + drain,
                    n_to=live + prov + drain - 1, reason=f.kind))
            # 3. the policy looks at the fleet and names a target size
            live, prov, drain = fleet_counts()
            obs = FleetObservation(
                now_s=now, queue_depth=len(queue), n_live=live,
                n_provisioning=prov, n_draining=drain,
                utilization=(served_last / capacity_last
                             if capacity_last else 0.0),
                arrival_rate=n_arrived_round / self.round_s,
                service_rate_per_replica=self.serve_per_round /
                self.round_s)
            target = self.policy.decide(obs)
            provisioned = live + prov
            while provisioned < target:
                spawn(round_idx, "policy")
                report.events.append(ScaleEvent(
                    t_s=now, kind="up", n_from=provisioned,
                    n_to=provisioned + 1, reason=self.policy.name))
                provisioned += 1
            if provisioned > target:
                # retire from the top: newest serving replicas first,
                # preferring ones with nothing left to do
                victims = sorted(
                    (r for r in replicas if r.state == "serving"),
                    key=lambda r: (len(r.backlog) > 0, -r.id))
                for rep in victims[:provisioned - target]:
                    rep.state = "draining"
                    report.events.append(ScaleEvent(
                        t_s=now, kind="down", n_from=provisioned,
                        n_to=provisioned - 1, reason=self.policy.name))
                    provisioned -= 1
            # 4. cold starts tick down
            for rep in replicas:
                if rep.state == "provisioning":
                    if rep.cold_remaining > 0:
                        rep.cold_remaining -= 1
                    if rep.cold_remaining == 0:
                        rep.state = "serving"
                        rep.server = self._build_server()
                        self._span(rep.id, "warm", round_idx)
            # 5. last line of defence: never strand admitted work
            live, prov, _ = fleet_counts()
            if live + prov == 0 and (len(queue) > 0 or trace_i < len(trace)
                                     or admitted_rids -
                                     set(report.results)):
                spawn(round_idx, "restore")
                report.events.append(ScaleEvent(
                    t_s=now, kind="up", n_from=0, n_to=1, reason="restore"))
            # 6. dispatch: least-loaded serving replica wins each request
            serving = [r for r in replicas if r.state == "serving"]
            while len(queue) > 0 and serving:
                rep = min(serving, key=lambda r: (len(r.backlog), r.id))
                if len(rep.backlog) >= self.backlog_limit:
                    break
                rep.backlog.append(queue.pop())
            # 7. serve: one real pipeline pass per replica with work
            served_last = 0
            capacity_last = max(1, len(serving) * self.serve_per_round)
            for rep in replicas:
                if not rep.alive:
                    continue
                batch = [rep.backlog.popleft()
                         for _ in range(min(len(rep.backlog),
                                            self.serve_per_round))]
                if batch:
                    out = rep.server.serve(batch)
                    report.results.update(out)
                    report.n_completed += len(out)
                    served_last += len(batch)
                if rep.state == "draining" and not rep.backlog:
                    live, prov, drain = fleet_counts()
                    self._decommission(rep, "retire", round_idx, queue,
                                       priorities, report)
            report.replica_rounds += sum(1 for r in replicas
                                         if r.state != "dead")
            report.max_replicas_seen = max(
                report.max_replicas_seen,
                sum(1 for r in replicas if r.state != "dead"))
            round_idx += 1
            report.rounds = round_idx
            if trace_i >= len(trace) and len(queue) == 0 and \
                    not any(r.backlog for r in replicas) and \
                    round_idx > max(faults_by_round, default=-1):
                break
        else:
            raise RuntimeError(f"fleet did not drain in "
                               f"{self.max_rounds} rounds")
        return report

    def _build_server(self) -> PipelineServer:
        return PipelineServer(self.cfg, g_inter=self.g_inter,
                              max_batch=self.max_batch)
