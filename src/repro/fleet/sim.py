"""DES twin of the elastic fleet: autoscaling economics at paper scale.

:mod:`repro.fleet.engine` proves the elastic machinery is *correct*
(token-identical serving, shared retire/crash path); this module measures
what a policy *costs*: replica-seconds paid versus p99 TTFT delivered
under diurnal and flash-crowd traffic, with cold starts, drains, SLO-aware
admission, priority scheduling, and optionally disaggregated
prefill/decode pools.

Deltas from :mod:`repro.serve.sim` (whose per-stage cost model — via
:class:`~repro.serve.ServingModel` — is reused unchanged):

* replicas are *elastic*: an :class:`~repro.fleet.policy.AutoscalerPolicy`
  observes the fleet every ``control_interval_s`` and names a target size;
  scale-up pays ``cold_start_s`` before the new replica serves (but its
  replica-seconds meter starts at provisioning — capacity is paid for
  while it warms), scale-down drains then retires;
* admission is *central*: one bounded priority queue
  (:class:`~repro.fleet.slo.PriorityQueue`) feeds every replica, with
  :class:`~repro.fleet.slo.AdmissionController` shedding requests whose
  class wait budget the queue already blows — so a replica dying never
  strands queued work, and an SLO shed is a distinct counter from
  backpressure;
* scale-down and crash share one exit: :meth:`_Fleet.decommission` — a
  drained retirement arrives with nothing outstanding, a crash (or a
  forced retire via a ``retire`` fault with ``drain_timeout_s=0``) with
  live requests that are re-admitted at the head of the queue;
* ``disaggregated=True`` splits the fleet into a prefill pool and a
  decode pool: prompts run only on prefill replicas, then a priced KV
  handoff (``kv_transfer_s_per_token`` per prompt token) moves the
  request — its first token materializing at handoff completion, exactly
  the functional protocol's semantics — to the decode pool, which the
  autoscaler sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

import numpy as np

from ..obs import ObsSpan
from ..resilience import FaultPlan
from ..serve.sim import ServingModel, ServingStats, _request_sizes
from ..serve.workload import ArrivalSpec, RequestSpec
from ..sim import Environment, Interrupt, Store, poisson_process
from .policy import AutoscalerPolicy, FleetObservation, ScaleEvent
from .slo import (ADMIT, AdmissionController, BACKPRESSURE, DOWN,
                  PriorityQueue, SHED, SLOClass)

__all__ = ["FleetModel", "FleetStats", "simulate_fleet",
           "service_rate_per_replica"]


@dataclass(frozen=True)
class FleetModel:
    """Cost/topology parameters of one elastic deployment.

    ``serving`` carries the per-replica pipeline shape and stage costs
    (its ``n_replicas`` is the *initial* unified fleet size).  With
    ``disaggregated=True`` the initial fleet is instead
    ``n_prefill_replicas`` prompt-only replicas plus ``n_decode_replicas``
    decode replicas of the same shape, and the autoscaler drives the
    decode pool.
    """

    serving: ServingModel
    cold_start_s: float = 5.0
    control_interval_s: float = 1.0
    drain_timeout_s: float = 30.0
    disaggregated: bool = False
    n_prefill_replicas: int = 1
    n_decode_replicas: int = 1
    kv_transfer_s_per_token: float = 1e-5
    #: admission window for prompt-only replicas.  Prefill groups carry a
    #: single request, so with only ``pipeline_limit`` slots over
    #: ``g_inter`` stages the pool is a closed tandem network whose
    #: bottleneck utilisation caps near N/(N+M-1) — a deeper window
    #: (default 4x the pipeline depth) buys back the bubbles that the
    #: unified pool hides by interleaving wide decode groups.
    prefill_pipeline_limit: Optional[int] = None

    def __post_init__(self):
        if self.cold_start_s < 0 or self.control_interval_s <= 0:
            raise ValueError("cold_start_s must be >= 0 and "
                             "control_interval_s positive")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")
        if self.disaggregated and (self.n_prefill_replicas < 1
                                   or self.n_decode_replicas < 1):
            raise ValueError("disaggregated fleet needs >= 1 replica in "
                             "each pool")
        if self.kv_transfer_s_per_token < 0:
            raise ValueError("kv_transfer_s_per_token must be >= 0")
        if self.prefill_pipeline_limit is not None \
                and self.prefill_pipeline_limit < 1:
            raise ValueError("prefill_pipeline_limit must be >= 1")

    def pipeline_limit_for(self, role: str) -> int:
        """Inflight-group window for a replica of ``role``."""
        if role == "prefill":
            if self.prefill_pipeline_limit is not None:
                return self.prefill_pipeline_limit
            return 4 * self.serving.effective_pipeline_limit
        return self.serving.effective_pipeline_limit


def service_rate_per_replica(serving: ServingModel,
                             spec: RequestSpec) -> float:
    """Requests/s one replica sustains on this mix (the policy's ``mu``):
    one prefill pass plus ``mean_new_tokens`` shares of a full-width
    decode pass on the bottleneck stage."""
    per_req = (serving.stage_time_s(0, int(round(spec.mean_prompt)))
               + spec.mean_new_tokens
               * serving.stage_time_s(serving.max_batch, 0)
               / serving.max_batch)
    return 1.0 / per_req


@dataclass
class FleetStats(ServingStats):
    """Serving stats plus the elastic fleet's ledger."""

    #: rejected by SLO-aware shedding (distinct from queue backpressure)
    n_rejected_admission: int = 0
    #: integral over [0, horizon] of replicas being paid for
    replica_seconds: float = 0.0
    n_cold_starts: int = 0
    n_retired: int = 0
    n_crashes: int = 0
    n_handoffs: int = 0            #: disagg KV transfers completed
    peak_replicas: int = 0
    scale_events: List[ScaleEvent] = field(default_factory=list)
    ttft_by_class: Dict[str, List[float]] = field(default_factory=dict)

    def slo_attainment(self, classes: Tuple[SLOClass, ...]
                       ) -> Dict[str, float]:
        """Per class: fraction of first tokens inside the TTFT budget."""
        out = {}
        for cls in classes:
            ttfts = self.ttft_by_class.get(cls.name, [])
            out[cls.name] = (
                float(np.mean([t <= cls.ttft_slo_s for t in ttfts]))
                if ttfts else 1.0)
        return out

    def attainment_at(self, slo_s: float) -> float:
        """Fraction of *all* first tokens within ``slo_s`` (class-blind)."""
        return float(np.mean([t <= slo_s for t in self.ttft_s])) \
            if self.ttft_s else 1.0


class _FleetReq:
    """One request's lifecycle, including its SLO class."""

    __slots__ = ("rid", "arrival_s", "prompt_len", "new_tokens",
                 "tokens_done", "first_token_s", "last_step_s", "finish_s",
                 "restarts", "cls")

    def __init__(self, rid: int, arrival_s: float, prompt_len: int,
                 new_tokens: int, cls: SLOClass):
        self.rid = rid
        self.arrival_s = arrival_s
        self.prompt_len = prompt_len
        self.new_tokens = new_tokens
        self.tokens_done = 0
        self.first_token_s: Optional[float] = None
        self.last_step_s = arrival_s
        self.finish_s: Optional[float] = None
        self.restarts = 0
        self.cls = cls


class _FleetReplica:
    """One pipeline replica with a lifecycle."""

    def __init__(self, env: Environment, model: ServingModel, index: int,
                 role: str):
        self.env = env
        self.model = model
        self.index = index
        self.role = role               #: "unified" | "prefill" | "decode"
        self.state = "provisioning"    #: -> serving -> draining -> dead
        self.stores = [Store(env) for _ in range(model.g_inter)]
        self.active: Dict[int, _FleetReq] = {}
        self.ready: Deque[_FleetReq] = deque()
        self.inflight = 0
        self.procs: list = []
        self.drain_started: Optional[float] = None

    @property
    def live(self) -> bool:
        return self.state in ("serving", "draining")

    def outstanding(self) -> List[_FleetReq]:
        seen = {st.rid: st for st in self.active.values()}
        return list(seen.values())


class _Fleet:
    """All shared state of one elastic simulation run."""

    def __init__(self, env: Environment, model: FleetModel,
                 stats: FleetStats, policy: AutoscalerPolicy,
                 admission: AdmissionController, mu: float,
                 horizon_s: float, spans: Optional[List[ObsSpan]]):
        self.env = env
        self.model = model
        self.serving = model.serving
        self.stats = stats
        self.policy = policy
        self.admission = admission
        self.mu = mu
        self.horizon_s = horizon_s
        self.spans = spans
        self.replicas: List[_FleetReplica] = []
        #: central bounded priority queue feeding the front pool
        self.queue: PriorityQueue = PriorityQueue()
        #: disagg only: requests whose KV arrived, awaiting a decode slot
        self.decode_pending: PriorityQueue = PriorityQueue()
        self.in_system = 0
        self._conc_mark = 0.0
        #: replica-seconds accrual
        self._rs_mark = 0.0
        self._n_paid = 0
        self._arrivals_window = 0
        # seed the initial fleet warm (no cold start at t=0)
        if model.disaggregated:
            for _ in range(model.n_prefill_replicas):
                self.spawn("prefill", warm=True, reason="initial")
            for _ in range(model.n_decode_replicas):
                self.spawn("decode", warm=True, reason="initial")
        else:
            for _ in range(self.serving.n_replicas):
                self.spawn("unified", warm=True, reason="initial")

    # -- bookkeeping -------------------------------------------------------
    def _track(self, delta: int) -> None:
        now = self.env.now
        self.stats.concurrency_integral += \
            self.in_system * (now - self._conc_mark)
        self._conc_mark = now
        self.in_system += delta

    def _pay(self, delta: int) -> None:
        """Move the replica-seconds meter (clamped to the horizon)."""
        t = min(self.env.now, self.horizon_s)
        self.stats.replica_seconds += self._n_paid * (t - self._rs_mark)
        self._rs_mark = t
        self._n_paid += delta
        self.stats.peak_replicas = max(self.stats.peak_replicas,
                                       self._n_paid)

    def flush(self) -> None:
        self._track(0)
        self._pay(0)

    def _span(self, rank: int, stream: str, name: str, start: float,
              end: float, rid: Optional[int] = None,
              category: str = "compute") -> None:
        if self.spans is not None:
            self.spans.append(ObsSpan(rank, stream, name, start, end,
                                      category=category, microbatch=rid))

    def _event(self, kind: str, n_from: int, n_to: int, reason: str,
               pool: str) -> None:
        now = self.env.now
        self.stats.scale_events.append(ScaleEvent(
            t_s=now, kind=kind, n_from=n_from, n_to=n_to, reason=reason,
            pool=pool))
        self._span(-1, "fleet", f"scale-{kind}", now, now,
                   category="recovery")

    # -- pools -------------------------------------------------------------
    def pool(self, role: str) -> List[_FleetReplica]:
        return [r for r in self.replicas if r.role == role]

    @property
    def front_role(self) -> str:
        """The pool arrivals enter: prefill when disaggregated."""
        return "prefill" if self.model.disaggregated else "unified"

    @property
    def scaled_role(self) -> str:
        """The pool the autoscaler drives: decode when disaggregated."""
        return "decode" if self.model.disaggregated else "unified"

    def n_state(self, role: str, *states: str) -> int:
        return sum(1 for r in self.pool(role) if r.state in states)

    # -- lifecycle ---------------------------------------------------------
    def spawn(self, role: str, warm: bool = False,
              reason: str = "policy") -> _FleetReplica:
        rep = _FleetReplica(self.env, self.serving, len(self.replicas),
                            role)
        self.replicas.append(rep)
        self._pay(+1)
        if warm or self.model.cold_start_s == 0:
            self._warm(rep)
        else:
            self.stats.n_cold_starts += 1
            rep.procs.append(self.env.process(
                self._provision_proc(rep),
                name=f"provision-{role}{rep.index}"))
            self._span(rep.index, "fleet", "cold-start", self.env.now,
                       self.env.now + self.model.cold_start_s,
                       category="other")
        return rep

    def _provision_proc(self, rep: _FleetReplica):
        try:
            yield self.env.timeout(self.model.cold_start_s)
        except Interrupt:
            return
        if rep.state == "provisioning":
            self._warm(rep)
            self.pump_all()

    def _warm(self, rep: _FleetReplica) -> None:
        rep.state = "serving"
        for i in range(self.serving.g_inter):
            rep.procs.append(self.env.process(
                _stage_proc(self.env, self, rep, i),
                name=f"{rep.role}{rep.index}-stage{i}"))

    def start_drain(self, rep: _FleetReplica) -> None:
        if rep.state in ("serving", "provisioning"):
            if rep.state == "provisioning":
                # never served: nothing to drain
                self.decommission(rep, "retire")
                return
            rep.state = "draining"
            rep.drain_started = self.env.now
            self._span(rep.index, "fleet", "drain", self.env.now,
                       self.env.now, category="other")

    def decommission(self, rep: _FleetReplica, kind: str) -> None:
        """The one exit for replicas — planned retirement and crash alike.

        Outstanding requests (KV-resident or mid-pipeline) lose their
        cache state and are re-admitted at the head of the central queue;
        a gracefully drained replica simply has none.
        """
        if rep.state == "dead":
            return
        rep.state = "dead"
        self._pay(-1)
        for proc in rep.procs:
            if proc.is_alive:
                proc.interrupt(f"replica-{kind}")
        orphans = rep.outstanding()
        rep.active.clear()
        rep.ready.clear()
        rep.inflight = 0
        if kind == "crash":
            self.stats.n_crashes += 1
        else:
            self.stats.n_retired += 1
        self._span(rep.index, "fleet", f"replica-{kind}", self.env.now,
                   self.env.now, category="fault" if kind == "crash"
                   else "recovery")
        for st in orphans:
            st.restarts += 1
            self.stats.n_restarts += 1
            st.tokens_done = 0
            st.first_token_s = None
            # back to the very start: prompt must be re-processed (the KV
            # died with the replica), ahead of same-priority peers
            self.queue.push_front(st, st.cls.priority)
        if orphans:
            self.pump_all()

    # -- admission ---------------------------------------------------------
    def on_arrival(self, st: _FleetReq) -> None:
        self.stats.n_arrived += 1
        self._arrivals_window += 1
        front = self.front_role
        n_live = self.n_state(front, "serving") \
            + self.n_state(front, "provisioning")
        depth = len(self.queue)
        ahead = self.queue.count_at_or_above(st.cls.priority)
        rate = self.n_state(front, "serving") * self.mu
        verdict = self.admission.verdict(st.cls, depth, ahead, n_live,
                                         rate)
        if verdict == ADMIT:
            self.stats.n_admitted += 1
            self._track(+1)
            self.queue.push(st, st.cls.priority)
            self.pump_all()
        elif verdict == SHED:
            self.stats.n_rejected_admission += 1
        elif verdict == BACKPRESSURE:
            self.stats.n_rejected_backpressure += 1
        else:
            assert verdict == DOWN
            self.stats.n_rejected_down += 1

    # -- scheduling --------------------------------------------------------
    def pump_all(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for rep in self.replicas:
                if rep.live:
                    progressed = self.pump_one(rep) or progressed

    def pump_one(self, rep: _FleetReplica) -> bool:
        """One dispatch attempt; True if a group entered the pipeline.

        Priority order mirrors the unified scheduler: new work (prefill /
        ingest) preferred while KV slots are free, decode groups otherwise.
        Draining replicas accept no new requests — they only finish what
        they hold.
        """
        model = self.serving
        if rep.inflight >= self.model.pipeline_limit_for(rep.role):
            return False
        taking_new = rep.state == "serving"
        if rep.role in ("unified", "prefill"):
            if (taking_new and len(self.queue) > 0
                    and len(rep.active) < model.effective_max_active):
                st = self.queue.pop()
                rep.active[st.rid] = st
                st.last_step_s = self.env.now
                rep.inflight += 1
                rep.stores[0].put(("prefill", [st]))
                return True
        if rep.role == "decode" and taking_new:
            # batch up waiting handoffs before dispatching, so freshly
            # ingested requests ride full-width decode groups
            while (len(self.decode_pending) > 0
                   and len(rep.active) < model.effective_max_active
                   and len(rep.ready) < model.max_batch):
                st = self.decode_pending.pop()
                rep.active[st.rid] = st
                rep.ready.append(st)
        if rep.role in ("unified", "decode") and rep.ready:
            group = []
            for _ in range(min(len(rep.ready), model.max_batch)):
                group.append(rep.ready.popleft())
            for st in group:
                st.last_step_s = self.env.now
            rep.inflight += 1
            rep.stores[0].put(("decode", group))
            return True
        return False

    def finish_group(self, rep: _FleetReplica, kind: str,
                     group: List[_FleetReq]) -> None:
        now = self.env.now
        rep.inflight -= 1
        if rep.role == "prefill":
            # prompt processed: the KV handoff (priced) carries the
            # request to the decode pool; first token lands at handoff
            for st in group:
                del rep.active[st.rid]
                self._span(rep.index, "serve", "prefill", st.last_step_s,
                           now, st.rid)
                self.env.process(self._handoff_proc(st),
                                 name=f"handoff-{st.rid}")
        else:
            for st in group:
                self._emit_token(rep, st, now)
        self.pump_all()

    def _emit_token(self, rep: _FleetReplica, st: _FleetReq,
                    now: float) -> None:
        st.tokens_done += 1
        self.stats.tokens_out += 1
        if st.tokens_done == 1:
            self._first_token(st, now)
            self._span(rep.index, "serve", "prefill", st.last_step_s, now,
                       st.rid)
        else:
            self._span(rep.index, "serve", f"decode{st.tokens_done - 1}",
                       st.last_step_s, now, st.rid)
        if st.tokens_done >= st.new_tokens:
            self._complete(rep, st, now)
        else:
            rep.ready.append(st)

    def _first_token(self, st: _FleetReq, now: float) -> None:
        st.first_token_s = now
        ttft = now - st.arrival_s
        self.stats.ttft_s.append(ttft)
        self.stats.ttft_by_class.setdefault(st.cls.name, []).append(ttft)

    def _complete(self, rep: _FleetReplica, st: _FleetReq,
                  now: float) -> None:
        st.finish_s = now
        rep.active.pop(st.rid, None)
        self.stats.n_completed += 1
        self.stats.sojourn_s.append(now - st.arrival_s)
        if st.new_tokens > 1 and st.first_token_s is not None:
            self.stats.tpot_s.append(
                (now - st.first_token_s) / (st.new_tokens - 1))
        self._track(-1)
        self._span(rep.index, "serve", "request", st.arrival_s, now,
                   st.rid, category="other")

    def _handoff_proc(self, st: _FleetReq):
        """Priced KV transfer prefill -> decode pool (disaggregated)."""
        try:
            yield self.env.timeout(
                self.model.kv_transfer_s_per_token * st.prompt_len)
        except Interrupt:
            return
        now = self.env.now
        self.stats.n_handoffs += 1
        # the decode tail samples the first token from the handed-off
        # logits the moment the KV lands (the functional protocol's
        # TAG_INGEST semantics)
        st.tokens_done = 1
        self.stats.tokens_out += 1
        self._first_token(st, now)
        if st.new_tokens <= 1:
            st.finish_s = now
            self.stats.n_completed += 1
            self.stats.sojourn_s.append(now - st.arrival_s)
            self._track(-1)
            return
        self.decode_pending.push(st, st.cls.priority)
        self.pump_all()

    # -- control loop ------------------------------------------------------
    def controller_proc(self):
        model = self.model
        interval = model.control_interval_s
        while self.env.now < self.horizon_s:
            yield self.env.timeout(interval)
            self.control_tick(self._arrivals_window / interval)
            self._arrivals_window = 0

    def control_tick(self, observed_rate: float) -> None:
        """One policy consultation + drain housekeeping."""
        now = self.env.now
        role = self.scaled_role
        pool = self.pool(role)
        # finish (or force) pending drains first
        for rep in pool:
            if rep.state == "draining":
                idle = not rep.active and rep.inflight == 0
                timed_out = rep.drain_started is not None and \
                    now - rep.drain_started >= self.model.drain_timeout_s
                if idle or timed_out:
                    self.decommission(rep, "retire")
        live = self.n_state(role, "serving")
        prov = self.n_state(role, "provisioning")
        drain = self.n_state(role, "draining")
        serving_reps = [r for r in pool if r.state == "serving"]
        util = float(np.mean([
            r.inflight / self.model.pipeline_limit_for(r.role)
            for r in serving_reps])) if serving_reps else 1.0
        waiting = len(self.queue) + (len(self.decode_pending)
                                     if self.model.disaggregated else 0)
        obs = FleetObservation(
            now_s=now, queue_depth=waiting, n_live=live,
            n_provisioning=prov, n_draining=drain, utilization=util,
            arrival_rate=observed_rate,
            service_rate_per_replica=self.mu)
        target = self.policy.decide(obs)
        provisioned = live + prov
        while provisioned < target:
            self.spawn(role, reason=self.policy.name)
            self._event("up", provisioned, provisioned + 1,
                        self.policy.name, role)
            provisioned += 1
        if provisioned > target:
            victims = sorted(
                (r for r in pool if r.state in ("serving", "provisioning")),
                key=lambda r: (r.state == "serving",
                               len(r.active) > 0, -r.index))
            for rep in victims[:provisioned - target]:
                self.start_drain(rep)
                self._event("down", provisioned, provisioned - 1,
                            self.policy.name, role)
                provisioned -= 1


def _stage_proc(env: Environment, fleet: _Fleet, rep: _FleetReplica,
                i: int):
    model = fleet.serving
    try:
        while True:
            kind, group = yield rep.stores[i].get()
            if kind == "prefill":
                cost = model.stage_time_s(0, group[0].prompt_len)
            else:
                cost = model.stage_time_s(len(group), 0)
            yield env.timeout(cost)
            if rep.state == "dead":
                return
            if i + 1 < model.g_inter:
                rep.stores[i + 1].put((kind, group))
            else:
                fleet.finish_group(rep, kind, group)
    except Interrupt:
        return


def _draw_class(admission: AdmissionController,
                fractions: Optional[Dict[str, float]],
                rng: np.random.Generator) -> SLOClass:
    names = list(admission.classes)
    if fractions is None or len(names) == 1:
        return admission.classes[names[0]]
    probs = np.array([fractions.get(n, 0.0) for n in names])
    total = probs.sum()
    if total <= 0:
        return admission.classes[names[0]]
    return admission.classes[
        names[int(rng.choice(len(names), p=probs / total))]]


def simulate_fleet(model: FleetModel, policy: AutoscalerPolicy,
                   arrivals: ArrivalSpec, horizon_s: float,
                   request_spec: Optional[RequestSpec] = None,
                   seq_len: int = 64,
                   admission: Optional[AdmissionController] = None,
                   class_fractions: Optional[Dict[str, float]] = None,
                   plan: Optional[FaultPlan] = None,
                   spans: Optional[List[ObsSpan]] = None) -> FleetStats:
    """Open-loop elastic run over a seeded arrival trace.

    ``plan`` may carry ``crash`` faults (replica ``rank`` dies at second
    ``tick``) and ``retire`` faults (forced scale-down at ``tick`` — with
    ``drain_timeout_s == 0`` it decommissions immediately, the exact
    mirror of the crash for the shared-path tests).  Replica indices
    follow spawn order: the initial fleet is ``0..n-1``.
    """
    spec = request_spec or RequestSpec()
    admission = admission or AdmissionController(classes=(SLOClass(),))
    policy.reset()
    env = Environment()
    stats = FleetStats(horizon_s=horizon_s,
                       offered_req_s=arrivals.rate_per_s)
    mu = service_rate_per_replica(model.serving, spec)
    fleet = _Fleet(env, model, stats, policy, admission, mu, horizon_s,
                   spans)
    size_rng = np.random.default_rng(spec.seed + 1)
    class_rng = np.random.default_rng(spec.seed + 3)
    next_rid = [0]

    def on_arrival(now: float) -> None:
        p, m = _request_sizes(seq_len, spec, size_rng)
        cls = _draw_class(admission, class_fractions, class_rng)
        fleet.on_arrival(_FleetReq(next_rid[0], now, p, m, cls))
        next_rid[0] += 1

    env.process(
        poisson_process(env, arrivals.mean_interarrival(),
                        seed=arrivals.seed, on_event=on_arrival,
                        alive=lambda: env.now < horizon_s),
        name="request-arrivals")
    env.process(fleet.controller_proc(), name="fleet-controller")
    if plan is not None:
        for fault in list(plan.crashes()) + list(plan.retires()):
            idx = fault.rank if fault.rank is not None else 0
            at_s = float(fault.tick)

            def _fault_proc(env: Environment, idx: int = idx,
                            t: float = at_s, kind: str = fault.kind):
                yield env.timeout(t)
                if not 0 <= idx < len(fleet.replicas):
                    return
                rep = fleet.replicas[idx]
                if rep.state == "dead":
                    return
                if kind == "crash":
                    fleet.decommission(rep, "crash")
                elif model.drain_timeout_s == 0:
                    fleet.decommission(rep, "retire")
                else:
                    fleet.start_drain(rep)

            env.process(_fault_proc(env),
                        name=f"{fault.kind}-replica{idx}@{at_s}")
    env.run(until=horizon_s)
    env.run()  # drain in-system work so completions are counted
    fleet.flush()
    return stats
