"""Elastic serving fleet: autoscaling, disaggregation, SLO admission.

The production layer above :mod:`repro.serve`, on both substrates:

* :mod:`repro.fleet.policy` — deterministic autoscaling policies
  (static / reactive-with-hysteresis / predictive-sinusoid) over the
  shared :class:`FleetObservation` contract;
* :mod:`repro.fleet.slo` — SLO classes, the stable priority queue, and
  load-shedding admission control, shared verbatim by both substrates;
* :mod:`repro.fleet.engine` — the functional path:
  :class:`DisaggPipelineServer` (prefill/decode disaggregation as an
  explicit KV-handoff wire protocol, token-identical to the unified
  server) and :class:`FleetServer` (a real elastic fleet of pipeline
  replicas where scale-down and crash share one decommission path);
* :mod:`repro.fleet.sim` — the DES twin: replica-seconds vs p99 TTFT
  economics of autoscaling under diurnal/flash-crowd traffic, cold
  starts, drains, and priced KV handoffs.
"""

from .engine import (DisaggPipelineServer, FleetRunReport, FleetServer,
                     TAG_DEC, TAG_INGEST, TAG_KV)
from .policy import (AutoscalerPolicy, FleetObservation, PredictivePolicy,
                     ReactivePolicy, ScaleEvent, StaticPolicy)
from .sim import (FleetModel, FleetStats, service_rate_per_replica,
                  simulate_fleet)
from .slo import (AdmissionController, DEFAULT_SLO_CLASSES, PriorityQueue,
                  SLOClass)

__all__ = [
    "AutoscalerPolicy",
    "FleetObservation",
    "ScaleEvent",
    "StaticPolicy",
    "ReactivePolicy",
    "PredictivePolicy",
    "SLOClass",
    "DEFAULT_SLO_CLASSES",
    "PriorityQueue",
    "AdmissionController",
    "DisaggPipelineServer",
    "FleetServer",
    "FleetRunReport",
    "TAG_KV",
    "TAG_INGEST",
    "TAG_DEC",
    "FleetModel",
    "FleetStats",
    "service_rate_per_replica",
    "simulate_fleet",
]
