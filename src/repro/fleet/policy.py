"""Autoscaling policies: deterministic controllers over fleet observations.

The contract is deliberately narrow so the same policy object drives both
substrates: the elastic DES (:mod:`repro.fleet.sim`) and the functional
fleet (:class:`repro.fleet.engine.FleetServer`) each build a
:class:`FleetObservation` from what they can actually measure, call
:meth:`AutoscalerPolicy.decide`, and act on the returned *target* replica
count.  Policies never see wall-clock time or ambient randomness — every
decision is a pure function of the observation stream plus the policy's
own constructor arguments (lint rule REP012 enforces this mechanically).

Three concrete policies:

* :class:`StaticPolicy` — a fixed fleet, the provisioning baseline;
* :class:`ReactivePolicy` — queueing-theoretic tracking with a hysteresis
  band (distinct scale-up/scale-down load thresholds) plus a cooldown, so
  a load sitting between the thresholds never flaps;
* :class:`PredictivePolicy` — fits a sinusoid to the observed arrival-rate
  history by deterministic least squares and provisions for the rate
  *cold-start seconds in the future*, absorbing diurnal swings before the
  queue feels them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "FleetObservation",
    "ScaleEvent",
    "AutoscalerPolicy",
    "StaticPolicy",
    "ReactivePolicy",
    "PredictivePolicy",
]


@dataclass(frozen=True)
class FleetObservation:
    """What a substrate can measure between control decisions."""

    now_s: float                 #: simulated (or round) time of the decision
    queue_depth: int             #: requests waiting for admission to a replica
    n_live: int                  #: replicas currently able to serve
    n_provisioning: int          #: replicas paying their cold start
    n_draining: int              #: replicas finishing work before retirement
    utilization: float           #: mean busy fraction of live replicas [0, 1]
    arrival_rate: float          #: observed arrivals/s over the last window
    service_rate_per_replica: float  #: requests/s one replica sustains

    @property
    def n_provisioned(self) -> int:
        """Replicas being paid for (cold-starting counts; draining counts)."""
        return self.n_live + self.n_provisioning + self.n_draining


@dataclass(frozen=True)
class ScaleEvent:
    """One acted-upon policy decision, for reports and determinism tests."""

    t_s: float
    kind: str        #: "up" | "down" | "crash"
    n_from: int
    n_to: int
    reason: str
    pool: str = "unified"

    def as_dict(self) -> dict:
        return {"t_s": self.t_s, "kind": self.kind, "n_from": self.n_from,
                "n_to": self.n_to, "reason": self.reason, "pool": self.pool}


class AutoscalerPolicy:
    """Interface: observation stream in, target replica count out.

    ``decide`` may keep internal state (cooldown clocks, rate history), but
    that state must be derived solely from the observations it was fed —
    two policies constructed with the same arguments and fed the same
    observation sequence return the same decision sequence.
    """

    name = "policy"

    def reset(self) -> None:
        """Forget accumulated state (start of a fresh run)."""

    def decide(self, obs: FleetObservation) -> int:
        """Target number of provisioned replicas after this control tick."""
        raise NotImplementedError


class StaticPolicy(AutoscalerPolicy):
    """Fixed-size fleet — the peak-provisioned baseline."""

    name = "static"

    def __init__(self, n_replicas: int):
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.n_replicas = n_replicas

    def decide(self, obs: FleetObservation) -> int:
        return self.n_replicas


class ReactivePolicy(AutoscalerPolicy):
    """Track offered load with a hysteresis band and a cooldown.

    Let ``rho = arrival_rate / (n_provisioned * mu)`` with ``mu`` the
    per-replica service rate derated by ``target_utilization``.  The
    controller scales *up* one step when ``rho > up_threshold`` (or the
    queue per live replica exceeds ``queue_high`` — bursts outrun rate
    estimates), and scales *down* one step only when the fleet one replica
    smaller would still sit below ``down_threshold``.  Because
    ``up_threshold > down_threshold``, a scale-up can never immediately
    qualify for scale-down: after growing at ``rho > up``, the shrink test
    against the *same* fleet size reads ``rho < down < up`` — false.  The
    ``cooldown_s`` clock additionally spaces consecutive events.
    """

    name = "reactive"

    def __init__(self, min_replicas: int = 1, max_replicas: int = 8,
                 target_utilization: float = 0.75,
                 up_threshold: float = 1.0, down_threshold: float = 0.7,
                 queue_high: int = 4, cooldown_s: float = 10.0):
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not 0.0 < down_threshold < up_threshold:
            raise ValueError("need 0 < down_threshold < up_threshold "
                             "(the hysteresis band)")
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.target_utilization = target_utilization
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.queue_high = queue_high
        self.cooldown_s = cooldown_s
        self.reset()

    def reset(self) -> None:
        self._last_event_s: Optional[float] = None

    def _cooling(self, now: float) -> bool:
        return (self._last_event_s is not None
                and now - self._last_event_s < self.cooldown_s)

    def decide(self, obs: FleetObservation) -> int:
        prov = max(1, obs.n_provisioned)
        mu = obs.service_rate_per_replica * self.target_utilization
        if mu <= 0:
            return prov
        rho = obs.arrival_rate / (prov * mu)
        queue_pressure = (obs.n_live > 0 and
                          obs.queue_depth > self.queue_high * obs.n_live)
        if (rho > self.up_threshold or queue_pressure) \
                and prov < self.max_replicas:
            if self._cooling(obs.now_s):
                return prov
            self._last_event_s = obs.now_s
            return prov + 1
        if prov > self.min_replicas:
            rho_smaller = obs.arrival_rate / ((prov - 1) * mu)
            if rho_smaller < self.down_threshold and obs.queue_depth == 0:
                if self._cooling(obs.now_s):
                    return prov
                self._last_event_s = obs.now_s
                return prov - 1
        return prov


class PredictivePolicy(AutoscalerPolicy):
    """Provision for the arrival rate ``lead_s`` seconds ahead.

    Keeps the ``(t, observed rate)`` history and, once ``min_history``
    points span at least half a period, fits ``rate(t) = c0 + c1 sin(wt)
    + c2 cos(wt)`` by least squares at the configured ``period_s`` (the
    operator knows the demand cycle; estimating the frequency itself is
    out of scope).  The decision provisions ``ceil(rate(t + lead_s) /
    (mu * target_utilization))`` replicas, so capacity lands *before* the
    demand does — the lead should cover the cold start plus a control
    interval.  Until the fit is possible it falls back to reactive-style
    tracking of the current rate.
    """

    name = "predictive"

    def __init__(self, period_s: float, lead_s: float,
                 min_replicas: int = 1, max_replicas: int = 8,
                 target_utilization: float = 0.75, min_history: int = 8,
                 max_history: int = 4096):
        if period_s <= 0 or lead_s < 0:
            raise ValueError("period_s must be positive, lead_s >= 0")
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        self.period_s = period_s
        self.lead_s = lead_s
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.target_utilization = target_utilization
        self.min_history = min_history
        self.max_history = max_history
        self.reset()

    def reset(self) -> None:
        self._history: List[Tuple[float, float]] = []

    def _fit(self) -> Optional[np.ndarray]:
        if len(self._history) < self.min_history:
            return None
        ts = np.array([t for t, _ in self._history])
        if ts[-1] - ts[0] < 0.5 * self.period_s:
            return None
        rates = np.array([r for _, r in self._history])
        w = 2.0 * np.pi / self.period_s
        basis = np.stack([np.ones_like(ts), np.sin(w * ts),
                          np.cos(w * ts)], axis=1)
        coef, *_ = np.linalg.lstsq(basis, rates, rcond=None)
        return coef

    def predict_rate(self, t: float) -> Optional[float]:
        """The fitted arrival rate at time ``t`` (None before enough data)."""
        coef = self._fit()
        if coef is None:
            return None
        w = 2.0 * np.pi / self.period_s
        return float(max(0.0, coef[0] + coef[1] * np.sin(w * t)
                         + coef[2] * np.cos(w * t)))

    def decide(self, obs: FleetObservation) -> int:
        self._history.append((obs.now_s, obs.arrival_rate))
        if len(self._history) > self.max_history:
            self._history = self._history[-self.max_history:]
        mu = obs.service_rate_per_replica * self.target_utilization
        if mu <= 0:
            return max(1, obs.n_provisioned)
        rate = self.predict_rate(obs.now_s + self.lead_s)
        if rate is None:
            rate = obs.arrival_rate  # not enough history: track, don't guess
        target = max(1, math.ceil(rate / mu)) if rate > 0 else 1
        # never shrink below what the visible queue needs right now
        if obs.queue_depth > 0:
            target = max(target, obs.n_provisioned)
        return min(self.max_replicas, max(self.min_replicas, target))
