"""Report functions over observed spans — the shared measurement math.

Everything the paper's profile-based evidence needs, computed from the one
schema both substrates emit (:mod:`repro.obs.schema`):

* :func:`busy_time` / :func:`overlap_time` — interval-union and
  two-set-intersection lengths (the primitives);
* :func:`overlap_stats` — the Fig. 7 quantity: how much of category *b*'s
  busy time is hidden under category *a* (all-reduce vs optimizer, or
  compute vs communication);
* :func:`utilization_report` — per-``(rank, stream)`` busy fraction over
  the trace window;
* :func:`idle_breakdown` — per-track time split by category plus idle;
* :func:`message_volume` — per-tag ``src -> dst`` message count / byte
  matrix from the p2p spans;
* :func:`summarize` — the terminal rendering ``python -m repro trace``
  prints.

All functions are pure over ``Iterable[ObsSpan]`` so tests can assert on
hand-built timelines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .schema import ObsSpan

__all__ = ["busy_time", "overlap_time", "overlap_stats",
           "utilization_report", "idle_breakdown", "message_volume",
           "message_volume_rows", "summarize"]


def _merged_length(intervals: Iterable[Tuple[float, float]]) -> float:
    """Total length of the union of ``[start, end]`` intervals."""
    ivs = sorted(intervals)
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for start, end in ivs:
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        total += cur_end - cur_start
    return total


def busy_time(spans: Iterable[ObsSpan]) -> float:
    """Covered time of ``spans`` (union of their intervals)."""
    return _merged_length((s.start, s.end) for s in spans)


def overlap_time(a: Iterable[ObsSpan], b: Iterable[ObsSpan]) -> float:
    """Time during which some span of ``a`` and some span of ``b`` are
    simultaneously active."""
    events: List[Tuple[float, int, int]] = []
    for s in a:
        events.append((s.start, +1, 0))
        events.append((s.end, -1, 0))
    for s in b:
        events.append((s.start, +1, 1))
        events.append((s.end, -1, 1))
    events.sort()
    active = [0, 0]
    last: Optional[float] = None
    total = 0.0
    for t, delta, which in events:
        if last is not None and active[0] > 0 and active[1] > 0:
            total += t - last
        active[which] += delta
        last = t
    return total


def overlap_stats(spans: Iterable[ObsSpan], cat_a: str,
                  cat_b: str) -> Dict[str, object]:
    """How much of category ``cat_b`` is hidden under category ``cat_a``.

    ``overlap_fraction`` is overlap / b-busy (1.0 = every second of *b*
    ran concurrently with *a*, i.e. fully hidden); 0.0 when *b* never
    runs.  For the paper's Fig. 7 call it with ``("allreduce",
    "optimizer")``; for the headline compute-communication overlap claim,
    with ``("compute", "allreduce")`` or ``("compute", "p2p")``.
    """
    spans = list(spans)
    a = [s for s in spans if s.category == cat_a]
    b = [s for s in spans if s.category == cat_b]
    a_busy = busy_time(a)
    b_busy = busy_time(b)
    overlap = overlap_time(a, b)
    return {
        "a": cat_a,
        "b": cat_b,
        "a_busy_s": a_busy,
        "b_busy_s": b_busy,
        "overlap_s": overlap,
        "overlap_fraction": overlap / b_busy if b_busy > 0 else 0.0,
        "n_a": len(a),
        "n_b": len(b),
    }


def _window(spans: Sequence[ObsSpan], t0: Optional[float],
            t1: Optional[float]) -> Tuple[float, float]:
    lo = min(s.start for s in spans) if t0 is None else t0
    hi = max(s.end for s in spans) if t1 is None else t1
    return lo, max(hi, lo)


def _by_track(spans: Iterable[ObsSpan]) -> Dict[Tuple[int, str],
                                                List[ObsSpan]]:
    groups: Dict[Tuple[int, str], List[ObsSpan]] = {}
    for s in spans:
        groups.setdefault((s.rank, s.stream), []).append(s)
    return groups


def utilization_report(spans: Iterable[ObsSpan],
                       t0: Optional[float] = None,
                       t1: Optional[float] = None
                       ) -> List[Dict[str, object]]:
    """Per-``(rank, stream)`` busy time and utilization over the window
    ``[t0, t1]`` (defaulting to the trace extent)."""
    spans = list(spans)
    if not spans:
        return []
    lo, hi = _window(spans, t0, t1)
    window = hi - lo
    rows = []
    for (rank, stream), group in sorted(_by_track(spans).items()):
        clipped = [(max(s.start, lo), min(s.end, hi))
                   for s in group if s.end > lo and s.start < hi]
        busy = _merged_length(clipped)
        rows.append({
            "rank": rank,
            "stream": stream,
            "busy_s": busy,
            "window_s": window,
            "utilization": busy / window if window > 0 else 0.0,
            "spans": len(group),
        })
    return rows


def idle_breakdown(spans: Iterable[ObsSpan],
                   t0: Optional[float] = None,
                   t1: Optional[float] = None) -> List[Dict[str, object]]:
    """Per-track time split: one column per category present, plus
    ``idle_s`` (window minus the union of all spans on the track).

    Because concurrent same-track spans are measured as a union for the
    idle figure but summed per category, the category columns can exceed
    ``window - idle`` on oversubscribed tracks — the union, not the sum,
    is the utilization source of truth.
    """
    spans = list(spans)
    if not spans:
        return []
    lo, hi = _window(spans, t0, t1)
    window = hi - lo
    categories: List[str] = []
    for s in spans:
        if s.category not in categories:
            categories.append(s.category)
    rows = []
    for (rank, stream), group in sorted(_by_track(spans).items()):
        row: Dict[str, object] = {"rank": rank, "stream": stream,
                                  "window_s": window}
        for cat in categories:
            row[f"{cat}_s"] = busy_time(
                s for s in group if s.category == cat)
        row["idle_s"] = window - _merged_length(
            (max(s.start, lo), min(s.end, hi))
            for s in group if s.end > lo and s.start < hi)
        rows.append(row)
    return rows


def message_volume(spans: Iterable[ObsSpan]
                   ) -> Dict[str, Dict[Tuple[int, int], Dict[str, int]]]:
    """Per-tag message matrix from the p2p spans.

    Returns ``{tag: {(src, dst): {"count": n, "bytes": b}}}``.  The source
    and destination come from the span's ``src``/``dst`` meta when present
    (the fabric and the runtime transport both record them), falling back
    to the span's own rank as source.
    """
    out: Dict[str, Dict[Tuple[int, int], Dict[str, int]]] = {}
    for s in spans:
        if s.category != "p2p":
            continue
        meta = s.with_meta()
        src = meta.get("src", s.rank)
        dst = meta.get("dst", -1)
        key = (int(src), int(dst))
        tag = out.setdefault(s.name, {})
        cell = tag.setdefault(key, {"count": 0, "bytes": 0})
        cell["count"] += 1
        cell["bytes"] += int(s.nbytes or 0)
    return out


def message_volume_rows(spans: Iterable[ObsSpan]
                        ) -> List[Dict[str, object]]:
    """The :func:`message_volume` matrix flattened to table rows."""
    rows = []
    for tag, cells in sorted(message_volume(spans).items()):
        for (src, dst), cell in sorted(cells.items()):
            rows.append({"tag": tag, "src": src, "dst": dst,
                         "count": cell["count"], "bytes": cell["bytes"]})
    return rows


def summarize(spans: Iterable[ObsSpan], title: str = "trace") -> str:
    """Terminal summary: utilization per track, overlap stats, volume."""
    spans = list(spans)
    if not spans:
        return f"== {title} ==\n(empty trace)"
    lines = [f"== {title}: {len(spans)} spans =="]
    lines.append("  track utilization:")
    for row in utilization_report(spans):
        lines.append(
            f"    gpu{row['rank']}.{row['stream']:<8} "
            f"busy {row['busy_s']:.6g}s / {row['window_s']:.6g}s "
            f"({100 * row['utilization']:.1f}%), {row['spans']} spans")
    for cat_a, cat_b in (("allreduce", "optimizer"), ("compute", "p2p")):
        stats = overlap_stats(spans, cat_a, cat_b)
        if stats["n_a"] and stats["n_b"]:
            lines.append(
                f"  overlap {cat_a}/{cat_b}: {stats['overlap_s']:.6g}s "
                f"({100 * stats['overlap_fraction']:.1f}% of {cat_b} "
                f"hidden)")
    volume = message_volume_rows(spans)
    if volume:
        total = sum(r["bytes"] for r in volume)
        count = sum(r["count"] for r in volume)
        lines.append(f"  p2p volume: {count} messages, {total} bytes "
                     f"across {len(volume)} (tag, src, dst) routes")
    return "\n".join(lines)
