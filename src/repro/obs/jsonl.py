"""Per-process JSONL span files and their merge.

The process backend (:mod:`repro.runtime.parallel`) runs rank programs in
separate OS processes, so spans can no longer be appended to one in-memory
tracer: each worker streams its spans to ``rank{r}.jsonl`` in a trace
directory — one JSON object per line, stamped with the worker's real
``os.getpid()`` — and the parent merges the files afterwards.

:func:`merge_rank_jsonl` reads every ``rank*.jsonl`` in a directory back
into :class:`~repro.obs.schema.ObsSpan` records plus the rank→pid mapping;
:func:`chrome_trace_multiprocess` builds the Chrome-trace document with
**real pids** (falling back to the rank id where no pid was recorded), so
a Perfetto timeline of a process-backend run shows the actual OS processes
that did the work.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from .export import chrome_trace
from .schema import ObsSpan

__all__ = ["span_to_dict", "span_from_dict", "append_spans_jsonl",
           "read_spans_jsonl", "merge_rank_jsonl",
           "chrome_trace_multiprocess", "write_chrome_trace_multiprocess"]


def span_to_dict(span: ObsSpan, pid: Optional[int] = None) -> Dict[str, object]:
    """Flatten one span to a JSON-ready dict (meta inlined as a dict)."""
    d: Dict[str, object] = {
        "rank": span.rank, "stream": span.stream, "name": span.name,
        "start": span.start, "end": span.end, "category": span.category,
        "microbatch": span.microbatch, "nbytes": span.nbytes,
        "meta": dict(span.meta),
    }
    if pid is not None:
        d["pid"] = pid
    return d


def span_from_dict(d: Dict[str, object]) -> ObsSpan:
    meta = d.get("meta") or {}
    return ObsSpan(
        rank=int(d["rank"]), stream=str(d["stream"]), name=str(d["name"]),
        start=float(d["start"]), end=float(d["end"]),
        category=str(d.get("category", "other")),
        microbatch=d.get("microbatch"), nbytes=d.get("nbytes"),
        meta=tuple(sorted(meta.items())),
    )


def append_spans_jsonl(path: str, spans: Iterable[ObsSpan],
                       pid: Optional[int] = None) -> int:
    """Append one line per span to ``path``; returns the count written.

    Workers call this with ``pid=os.getpid()`` after every command, so a
    crashed worker's already-flushed spans survive it.
    """
    n = 0
    with open(path, "a", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_to_dict(span, pid=pid)) + "\n")
            n += 1
    return n


def read_spans_jsonl(path: str) -> Tuple[List[ObsSpan], Dict[int, int]]:
    """Read one JSONL span file; returns (spans, rank -> pid seen)."""
    spans: List[ObsSpan] = []
    pids: Dict[int, int] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            span = span_from_dict(d)
            spans.append(span)
            if "pid" in d:
                pids[span.rank] = int(d["pid"])
    return spans, pids


def merge_rank_jsonl(trace_dir: str) -> Tuple[List[ObsSpan], Dict[int, int]]:
    """Merge every ``rank*.jsonl`` under ``trace_dir`` into one span list
    (sorted by start time) plus the combined rank → pid mapping."""
    spans: List[ObsSpan] = []
    pids: Dict[int, int] = {}
    for path in sorted(glob.glob(os.path.join(trace_dir, "rank*.jsonl"))):
        file_spans, file_pids = read_spans_jsonl(path)
        spans.extend(file_spans)
        pids.update(file_pids)
    spans.sort(key=lambda s: s.start)
    return spans, pids


def chrome_trace_multiprocess(spans: Iterable[ObsSpan],
                              pids: Dict[int, int]) -> Dict[str, object]:
    """Chrome-trace document whose ``pid`` fields are the workers' real OS
    pids (process names stay ``rank {r}`` so the timeline reads the same).
    Ranks without a recorded pid (e.g. parent-side spans) keep rank as pid.
    """
    doc = chrome_trace(spans)
    rank_pid = {rank: pid for rank, pid in pids.items()}
    for ev in doc["traceEvents"]:
        rank = ev["pid"]
        if rank in rank_pid:
            ev["pid"] = rank_pid[rank]
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                ev["args"] = {"name": f"rank {rank} (pid {rank_pid[rank]})"}
    return doc


def write_chrome_trace_multiprocess(path: str, trace_dir: str,
                                    extra_spans: Iterable[ObsSpan] = ()
                                    ) -> int:
    """Merge a trace directory (plus optional parent-side spans) into one
    Chrome-trace JSON at ``path``; returns the span count."""
    spans, pids = merge_rank_jsonl(trace_dir)
    spans = sorted([*spans, *extra_spans], key=lambda s: s.start)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace_multiprocess(spans, pids), fh)
    return len(spans)
