"""Trace exporters: Chrome-trace (Perfetto) JSON and CSV.

:func:`chrome_trace` produces the Trace Event Format dict that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one *complete* event (``"ph": "X"``) per span, with ``ts``/``dur`` in
  **microseconds** (the format's required unit);
* ``pid`` = rank, ``tid`` = a stable per-stream id (compute=0, aux=1,
  dma=2, net=3, further streams enumerated after);
* ``process_name`` / ``thread_name`` metadata events so the viewer shows
  ``rank 0`` / ``compute`` instead of bare numbers;
* span payload (category, microbatch, bytes, extra meta) in ``args``.

:func:`csv_rows` / :func:`write_csv` flatten the same spans to one dict
row per span for spreadsheet-side analysis.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Sequence, Tuple

from .schema import STREAMS, ObsSpan

__all__ = ["chrome_trace", "write_chrome_trace", "csv_rows", "write_csv"]

_SECONDS_TO_US = 1e6


def _tid_table(spans: Sequence[ObsSpan]) -> Dict[str, int]:
    """Stable stream -> tid mapping: canonical streams first, then others
    in first-seen order."""
    table = {name: i for i, name in enumerate(STREAMS)}
    for s in spans:
        if s.stream not in table:
            table[s.stream] = len(table)
    return table


def chrome_trace(spans: Iterable[ObsSpan]) -> Dict[str, object]:
    """Build the Trace Event Format document for ``spans``."""
    spans = list(spans)
    tids = _tid_table(spans)
    events: List[Dict[str, object]] = []
    seen_procs: set = set()
    seen_threads: set = set()
    for s in sorted(spans, key=lambda s: (s.rank, tids[s.stream], s.start)):
        tid = tids[s.stream]
        if s.rank not in seen_procs:
            seen_procs.add(s.rank)
            events.append({
                "ph": "M", "pid": s.rank, "tid": 0,
                "name": "process_name", "args": {"name": f"rank {s.rank}"},
            })
        if (s.rank, tid) not in seen_threads:
            seen_threads.add((s.rank, tid))
            events.append({
                "ph": "M", "pid": s.rank, "tid": tid,
                "name": "thread_name", "args": {"name": s.stream},
            })
        args: Dict[str, object] = {"category": s.category}
        if s.microbatch is not None:
            args["microbatch"] = s.microbatch
        if s.nbytes is not None:
            args["bytes"] = s.nbytes
        args.update(s.with_meta())
        events.append({
            "ph": "X",
            "name": s.name,
            "cat": s.category,
            "ts": s.start * _SECONDS_TO_US,
            "dur": s.duration * _SECONDS_TO_US,
            "pid": s.rank,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[ObsSpan]) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the span count."""
    spans = list(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans), fh)
    return len(spans)


_CSV_FIELDS = ("rank", "stream", "name", "category", "start", "end",
               "duration", "microbatch", "nbytes")


def csv_rows(spans: Iterable[ObsSpan]) -> List[Dict[str, object]]:
    """One flat dict per span (extra meta keys appended after the fixed
    fields)."""
    rows = []
    for s in spans:
        row: Dict[str, object] = {
            "rank": s.rank, "stream": s.stream, "name": s.name,
            "category": s.category, "start": s.start, "end": s.end,
            "duration": s.duration, "microbatch": s.microbatch,
            "nbytes": s.nbytes,
        }
        row.update(s.with_meta())
        rows.append(row)
    return rows


def write_csv(path: str, spans: Iterable[ObsSpan]) -> int:
    """Write one CSV row per span to ``path``; returns the span count."""
    rows = csv_rows(spans)
    columns: List[str] = list(_CSV_FIELDS)
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)
