"""The shared span schema of the observability layer.

Both execution substrates — the discrete-event performance model
(:mod:`repro.sim` / :mod:`repro.cluster`) and the functional runtime
(:mod:`repro.runtime`) — describe what happened as *spans*: named intervals
on a ``(rank, stream)`` track.  This module defines the one schema they
share, so exporters (:mod:`repro.obs.export`) and report functions
(:mod:`repro.obs.report`) never need to know which substrate produced a
timeline.

A span is:

``rank``
    The GPU / rank the work ran on (the Chrome-trace ``pid``).
``stream``
    Which engine of that rank: ``"compute"`` (default CUDA stream),
    ``"aux"`` (AxoNN's second stream, paper Fig. 7), ``"dma"`` (host<->
    device copies), ``"net"`` (NVLink port / NIC occupancy).  The
    Chrome-trace ``tid``.
``name`` / ``category``
    The span label (``fwd3``, ``allreduce-chunk0``, ...) and its coarse
    class — one of :data:`CATEGORIES` — which the reports aggregate over.
``start`` / ``end``
    Seconds.  Simulated seconds on the DES substrate, wall-clock seconds
    (from an arbitrary origin) on the functional runtime — the schema does
    not distinguish; all report math is origin- and unit-agnostic.
``microbatch`` / ``nbytes``
    Optional payload identity: which microbatch the work belonged to and
    how many bytes moved (communication and DMA spans).
``meta``
    Any further key/value payload (``src``/``dst`` ranks of a transfer,
    flops of a kernel, backend name, ...), stored as a sorted tuple so
    spans stay hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["CATEGORIES", "STREAMS", "ObsSpan", "validate_span",
           "from_sim_span", "from_sim_tracer"]

#: canonical span categories; reports aggregate on these.  The last three
#: belong to the resilience layer: injected faults, rollback/respawn
#: recoveries, and checkpoint/snapshot writes.
CATEGORIES = ("compute", "p2p", "allreduce", "optimizer", "h2d", "d2h",
              "other", "fault", "recovery", "checkpoint")

#: canonical stream names in display order (Chrome-trace tid assignment);
#: ``fault`` carries the resilience layer's markers, ``fleet`` the elastic
#: serving layer's lifecycle (scale-up/down, cold starts, drains, crashes)
STREAMS = ("compute", "aux", "dma", "net", "fault", "serve", "fleet")


@dataclass(frozen=True)
class ObsSpan:
    """One observed interval on a ``(rank, stream)`` track."""

    rank: int
    stream: str
    name: str
    start: float
    end: float
    category: str = "other"
    microbatch: Optional[int] = None
    nbytes: Optional[int] = None
    meta: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def track(self) -> str:
        """Display track name, matching the sim tracer's convention."""
        return f"gpu{self.rank}.{self.stream}"

    def with_meta(self) -> Dict[str, object]:
        return dict(self.meta)


def validate_span(span: ObsSpan) -> None:
    """Raise :class:`ValueError` on a schema violation."""
    if span.rank < 0:
        raise ValueError(f"negative rank: {span.rank}")
    if not span.stream:
        raise ValueError("empty stream name")
    if not span.name:
        raise ValueError("empty span name")
    if span.end < span.start:
        raise ValueError(
            f"span ends before it starts: {span.name} "
            f"[{span.start}, {span.end}]")
    if span.category not in CATEGORIES:
        raise ValueError(
            f"unknown category {span.category!r}; expected one of "
            f"{CATEGORIES}")
    if span.nbytes is not None and span.nbytes < 0:
        raise ValueError(f"negative nbytes: {span.nbytes}")


def _category_of(raw: str) -> str:
    return raw if raw in CATEGORIES else "other"


def from_sim_span(span) -> ObsSpan:
    """Convert one :class:`repro.sim.Span` to the shared schema.

    The sim tracer's track names follow ``gpu{rank}.{stream}`` (the GPUs
    and the fabric both use it); anything else maps to rank 0 with the
    track name as the stream.
    """
    track = span.track
    rank, stream = 0, track
    if track.startswith("gpu"):
        head, _, tail = track.partition(".")
        try:
            rank = int(head[3:])
            stream = tail or "compute"
        except ValueError:
            pass
    meta = span.with_meta()
    microbatch = meta.pop("mb", None)
    nbytes = meta.pop("bytes", None)
    return ObsSpan(
        rank=rank,
        stream=stream,
        name=span.name,
        start=span.start,
        end=span.end,
        category=_category_of(span.category),
        microbatch=microbatch if isinstance(microbatch, int) else None,
        nbytes=int(nbytes) if isinstance(nbytes, (int, float)) else None,
        meta=tuple(sorted(meta.items())),
    )


def from_sim_tracer(tracer) -> List[ObsSpan]:
    """Convert every span of a :class:`repro.sim.Tracer`."""
    return [from_sim_span(s) for s in tracer.spans]
