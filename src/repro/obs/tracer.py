"""Wall-clock span tracer for the functional runtime.

The discrete-event substrate already has :class:`repro.sim.Tracer`; this is
its functional-runtime twin.  It stamps spans with wall-clock seconds from
a fixed origin (tracer construction), records them directly in the shared
:class:`~repro.obs.schema.ObsSpan` schema, and costs nothing when disabled
— the hot paths guard every call with ``if tracer is not None``, and a
constructed-but-disabled tracer short-circuits in :meth:`record`.

Usage::

    tracer = RuntimeTracer()
    with tracer.span(rank=0, stream="compute", name="fwd0",
                     category="compute", microbatch=0):
        stage.forward(...)
    tracer.record(rank=1, stream="net", name="forward", start=t0,
                  end=tracer.now(), category="p2p", nbytes=4096)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from .schema import ObsSpan

__all__ = ["RuntimeTracer"]


class RuntimeTracer:
    """Collects :class:`ObsSpan` records with wall-clock timestamps.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.perf_counter`); timestamps are relative to the clock value
    at construction so exported traces start near zero.
    """

    def __init__(self, enabled: bool = True,
                 clock: Callable[[], float] = time.perf_counter):
        self.enabled = enabled
        self._clock = clock
        self._origin = clock()
        self.spans: List[ObsSpan] = []

    def now(self) -> float:
        """Seconds since the tracer was constructed."""
        return self._clock() - self._origin

    def record(self, rank: int, stream: str, name: str, start: float,
               end: float, category: str = "other",
               microbatch: Optional[int] = None,
               nbytes: Optional[int] = None, **meta: object) -> None:
        """Record a completed span (timestamps from :meth:`now`)."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(
                f"span ends before it starts: {name} [{start}, {end}]")
        self.spans.append(ObsSpan(
            rank=rank, stream=stream, name=name, start=start, end=end,
            category=category, microbatch=microbatch, nbytes=nbytes,
            meta=tuple(sorted(meta.items())),
        ))

    @contextmanager
    def span(self, rank: int, stream: str, name: str,
             category: str = "other", microbatch: Optional[int] = None,
             nbytes: Optional[int] = None,
             **meta: object) -> Iterator[None]:
        """Context manager recording the enclosed block as one span."""
        if not self.enabled:
            yield
            return
        start = self.now()
        try:
            yield
        finally:
            self.record(rank, stream, name, start, self.now(),
                        category=category, microbatch=microbatch,
                        nbytes=nbytes, **meta)

    # -- queries (mirror repro.sim.Tracer) ---------------------------------
    def tracks(self) -> List[str]:
        """Track names in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track, None)
        return list(seen)

    def by_category(self, category: str) -> List[ObsSpan]:
        return [s for s in self.spans if s.category == category]

    def clear(self) -> None:
        self.spans.clear()
