"""repro.obs — the unified observability layer.

One span schema, two producers, shared consumers:

* :mod:`.schema` — :class:`ObsSpan`, the ``(rank, stream, name, start,
  end, category, microbatch, nbytes)`` record both substrates emit, plus
  converters from the sim tracer's spans;
* :mod:`.tracer` — :class:`RuntimeTracer`, the wall-clock tracer the
  functional runtime (:mod:`repro.runtime`) hooks into;
* :mod:`.export` — Chrome-trace/Perfetto JSON and CSV exporters;
* :mod:`.report` — utilization, compute-communication overlap, idle
  breakdown and message-volume reports (the math behind the paper's
  Fig. 7 evidence).

``python -m repro trace`` runs a configured scenario on either substrate
and emits the trace plus a terminal summary.
"""

from .export import chrome_trace, csv_rows, write_chrome_trace, write_csv
from .jsonl import (
    append_spans_jsonl,
    chrome_trace_multiprocess,
    merge_rank_jsonl,
    read_spans_jsonl,
    write_chrome_trace_multiprocess,
)
from .report import (
    busy_time,
    idle_breakdown,
    message_volume,
    message_volume_rows,
    overlap_stats,
    overlap_time,
    summarize,
    utilization_report,
)
from .schema import (
    CATEGORIES,
    STREAMS,
    ObsSpan,
    from_sim_span,
    from_sim_tracer,
    validate_span,
)
from .tracer import RuntimeTracer

__all__ = [
    "CATEGORIES",
    "STREAMS",
    "ObsSpan",
    "from_sim_span",
    "from_sim_tracer",
    "validate_span",
    "RuntimeTracer",
    "chrome_trace",
    "csv_rows",
    "write_chrome_trace",
    "write_csv",
    "append_spans_jsonl",
    "chrome_trace_multiprocess",
    "merge_rank_jsonl",
    "read_spans_jsonl",
    "write_chrome_trace_multiprocess",
    "busy_time",
    "idle_breakdown",
    "message_volume",
    "message_volume_rows",
    "overlap_stats",
    "overlap_time",
    "summarize",
    "utilization_report",
]
