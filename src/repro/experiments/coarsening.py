"""Experiment: Fig. 8 — combined all-reduce + optimizer time vs the
coarsening factor k.

Paper setting: 12 B model, 48 GPUs, memory optimization on.  k=1 suffers
from per-call overheads (worse than no overlap at all); large k gravitates
toward sequential behaviour; the optimum sits at an intermediate value."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch

__all__ = ["fig8_rows", "fig8_claims", "DEFAULT_K_VALUES"]

DEFAULT_K_VALUES = (1, 2, 4, 8, 16, 32, 128)


def fig8_rows(k_values: Sequence[int] = DEFAULT_K_VALUES,
              num_gpus: int = 48, model: str = "12B",
              bucket_size: int = 16_000_000) -> List[Dict[str, object]]:
    spec = WEAK_SCALING_MODELS[model]
    base = AxoNNConfig(
        spec=spec, num_gpus=num_gpus, g_inter=6, g_data=num_gpus // 6,
        microbatch_size=1, batch_size=num_gpus * 4, memopt=True,
        bucket_size=bucket_size)
    rows = [{
        "k": 0,  # sentinel: no overlap
        "label": "no-overlap",
        "combined_s": simulate_batch(base.with_(overlap=False))
        .dp_opt_combined_s,
    }]
    for k in k_values:
        r = simulate_batch(base.with_(coarsening_k=k))
        rows.append({"k": k, "label": f"k={k}",
                     "combined_s": r.dp_opt_combined_s})
    return rows


def fig8_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    no_overlap = next(r["combined_s"] for r in rows if r["k"] == 0)
    overlapped = {r["k"]: r["combined_s"] for r in rows if r["k"] > 0}
    best_k = min(overlapped, key=overlapped.get)
    largest_k = max(overlapped)
    return {
        "k1_worse_than_no_overlap": overlapped[1] > no_overlap,
        "optimum_at_intermediate_k": 2 <= best_k <= 32,
        "best_beats_no_overlap": overlapped[best_k] < no_overlap,
        "large_k_degrades": overlapped[largest_k] > overlapped[best_k],
    }
