"""Ablation studies beyond the paper's headline figures.

These quantify the design choices DESIGN.md calls out:

* **backend swap** — AxoNN's pipeline with MPI (async) vs NCCL (blocking)
  point-to-point, isolating the Section IV-A claim;
* **placement policy** — pipeline-contiguous vs data-contiguous mapping of
  the 2D grid onto nodes;
* **pipeline_limit sweep** — the Section IV-A choice of fixing the limit to
  G_inter;
* **schedule** — 1F1B vs GPipe for the flushing baselines;
* **bucket-size sweep** — sensitivity of the offloaded optimizer to bsize.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..baselines import ThreeDConfig, simulate_baseline_batch
from ..core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch

__all__ = ["backend_ablation", "placement_ablation",
           "pipeline_limit_ablation", "schedule_ablation",
           "bucket_size_ablation", "scheduling_jitter_ablation",
           "full_grid_validation"]


def _base_cfg(batch_size: int = 768, **kw) -> AxoNNConfig:
    base = dict(spec=WEAK_SCALING_MODELS["12B"], num_gpus=48, g_inter=6,
                g_data=8, microbatch_size=8, batch_size=batch_size,
                memopt=True)
    base.update(kw)
    return AxoNNConfig(**base)


def backend_ablation(batch_size: int = 768) -> List[Dict[str, object]]:
    """AxoNN with MPI vs NCCL p2p: the async-messaging advantage."""
    rows = []
    for backend in ("mpi", "nccl"):
        r = simulate_batch(_base_cfg(batch_size, backend_p2p=backend))
        rows.append({"p2p_backend": backend,
                     "pipeline_s": r.pipeline_s,
                     "batch_time_s": r.batch_time_s})
    return rows


def placement_ablation(batch_size: int = 768) -> List[Dict[str, object]]:
    """Grid placement: pipeline-contiguous favours the frequent p2p
    messages; data-contiguous favours the per-batch all-reduce."""
    rows = []
    for policy in ("pipeline-contiguous", "data-contiguous"):
        r = simulate_batch(_base_cfg(batch_size, placement_policy=policy))
        rows.append({"placement": policy,
                     "pipeline_s": r.pipeline_s,
                     "allreduce_s": r.allreduce_s,
                     "batch_time_s": r.batch_time_s})
    return rows


def pipeline_limit_ablation(limits: Sequence[int] = (1, 2, 4, 6, 12),
                            batch_size: int = 768
                            ) -> List[Dict[str, object]]:
    """Sweep the in-flight microbatch bound; the paper fixes it to
    G_inter as the throughput/memory sweet spot."""
    rows = []
    for limit in limits:
        r = simulate_batch(_base_cfg(batch_size, pipeline_limit=limit))
        rows.append({"pipeline_limit": limit,
                     "pipeline_s": r.pipeline_s})
    return rows


def schedule_ablation(batch_size: int = 768) -> List[Dict[str, object]]:
    """1F1B vs GPipe for the flushing baseline (same 3D configuration)."""
    rows = []
    for schedule in ("1f1b", "gpipe"):
        cfg = ThreeDConfig(
            spec=WEAK_SCALING_MODELS["12B"], num_gpus=48, g_intra=3,
            g_inter=2, g_data=8, microbatch_size=2, batch_size=batch_size,
            framework="deepspeed", schedule=schedule)
        r = simulate_baseline_batch(cfg)
        bd = r.memory
        rows.append({"schedule": schedule,
                     "pipeline_s": r.pipeline_s,
                     "activation_bytes": bd.activations})
    return rows


def scheduling_jitter_ablation(sigmas=(0.0, 0.1, 0.2, 0.3),
                               batch_size: int = 768
                               ) -> List[Dict[str, object]]:
    """Message-driven (AxoNN) vs static 1F1B scheduling under compute
    jitter, with the *same* MPI backend and the same perturbed kernel
    durations for both.

    Outcome (documented in EXPERIMENTS.md): in our cost model the
    scheduling discipline alone changes little — AxoNN's measured advantage
    comes from backend asynchrony and the memory-optimization-enabled data
    parallelism, consistent with the paper's own attribution.
    """
    rows = []
    for sigma in sigmas:
        ax = simulate_batch(_base_cfg(batch_size, compute_jitter=sigma))
        static = simulate_baseline_batch(ThreeDConfig(
            spec=WEAK_SCALING_MODELS["12B"], num_gpus=48, g_intra=1,
            g_inter=6, g_data=8, microbatch_size=8, batch_size=batch_size,
            framework="megatron", backend_p2p="mpi", compute_jitter=sigma))
        rows.append({
            "jitter_sigma": sigma,
            "message_driven_pipeline_s": ax.pipeline_s,
            "static_1f1b_pipeline_s": static.pipeline_s,
            "ratio": static.pipeline_s / ax.pipeline_s,
        })
    return rows


def full_grid_validation(batch_size: int = 768) -> List[Dict[str, object]]:
    """Validate the one-row symmetry assumption: simulating every
    data-parallel row must agree with the single-row fast path (to within
    fabric-contention effects when pipelines straddle nodes)."""
    rows = []
    for g_inter in (6, 8):
        cfg = _base_cfg(batch_size, g_inter=g_inter, g_data=48 // g_inter)
        one = simulate_batch(cfg)
        full = simulate_batch(cfg, full_grid=True)
        rows.append({
            "g_inter": g_inter,
            "one_row_pipeline_s": one.pipeline_s,
            "full_grid_pipeline_s": full.pipeline_s,
            "relative_gap": abs(full.pipeline_s - one.pipeline_s)
            / one.pipeline_s,
        })
    return rows


def bucket_size_ablation(bucket_sizes: Sequence[int] =
                         (1_000_000, 4_000_000, 16_000_000, 64_000_000),
                         batch_size: int = 768) -> List[Dict[str, object]]:
    """Offload bucket-size sweep: smaller buckets save device memory but
    pay more per-bucket overhead."""
    rows = []
    for bsize in bucket_sizes:
        r = simulate_batch(_base_cfg(batch_size, bucket_size=bsize))
        rows.append({"bucket_size": bsize,
                     "optimizer_s": r.optimizer_s,
                     "dp_opt_combined_s": r.dp_opt_combined_s,
                     "optimizer_device_bytes": 16 * bsize})
    return rows
