"""Experiment drivers: one module per paper table/figure, plus ablations.

Every experiment exposes a ``*_rows`` (or ``*_curves``/``*_profile``)
function returning plain dict rows, and a ``*_claims`` function that
evaluates the paper's qualitative claims on those rows — the same code path
is used by the test suite and the benchmark harness.

Index (see DESIGN.md for the full mapping):

* Fig. 3 / Fig. 4 — :mod:`.microbench`
* Fig. 5 — :mod:`.ginter_sweep`
* Fig. 6 — :mod:`.memopt_breakdown`
* Fig. 7 — :mod:`.overlap_timeline`
* Fig. 8 — :mod:`.coarsening`
* Fig. 9 / Fig. 11 — :mod:`.scaling`
* Fig. 10 — :mod:`.convergence`
* Table I / Table II — :mod:`.tables`
* extensions — :mod:`.ablations`
* resilience (MTBF x checkpoint interval vs. Young/Daly) — :mod:`.resilience`
* serving (load sweep, Little's law, replica failover) — :mod:`.serving`
* elastic fleet (autoscaling, disaggregation, SLOs) — :mod:`.fleet`
"""

from .ablations import (
    backend_ablation,
    bucket_size_ablation,
    full_grid_validation,
    pipeline_limit_ablation,
    placement_ablation,
    schedule_ablation,
    scheduling_jitter_ablation,
)
from .coarsening import DEFAULT_K_VALUES, fig8_claims, fig8_rows
from .convergence import VALIDATION_CONFIG, fig10_claims, fig10_curves
from .ginter_sweep import PAPER_G_INTER_VALUES, fig5_claims, fig5_rows
from .memopt_breakdown import fig6_claims, fig6_rows, memory_savings_summary
from .microbench import fig3_claims, fig3_rows, fig4_claims, fig4_rows
from .overlap_timeline import fig7_claims, fig7_profile
from .pipeline_diagram import pipeline_occupancy, render_occupancy
from .scaling import (
    MODEL_GPUS,
    PAPER_TABLE2,
    Table2Row,
    best_4d_decompositions,
    fig9_claims,
    fig11_claims,
    table2_row,
    make_axonn_config,
    make_baseline_config,
    strong_scaling_rows,
    sweep_4d,
    weak_scaling_rows,
)
from .fleet import (
    AUTOSCALE_SLO_S,
    autoscale_serving_model,
    autoscaling_rows,
    disagg_rows,
    disagg_serving_model,
    fleet_claims,
    fleet_failover,
    fleet_report,
)
from .resilience import resilience_claims, resilience_report, resilience_rows
from .serving import (
    serving_claims,
    serving_closed_loop,
    serving_failover,
    serving_model,
    serving_report,
    serving_rows,
)
from .tables import table1_claims, table1_rows, table2_claims, table2_rows

__all__ = [
    "backend_ablation",
    "bucket_size_ablation",
    "full_grid_validation",
    "scheduling_jitter_ablation",
    "pipeline_limit_ablation",
    "placement_ablation",
    "schedule_ablation",
    "DEFAULT_K_VALUES",
    "fig8_claims",
    "fig8_rows",
    "VALIDATION_CONFIG",
    "fig10_claims",
    "fig10_curves",
    "PAPER_G_INTER_VALUES",
    "fig5_claims",
    "fig5_rows",
    "fig6_claims",
    "fig6_rows",
    "memory_savings_summary",
    "fig3_claims",
    "fig3_rows",
    "fig4_claims",
    "fig4_rows",
    "fig7_claims",
    "fig7_profile",
    "pipeline_occupancy",
    "render_occupancy",
    "MODEL_GPUS",
    "PAPER_TABLE2",
    "Table2Row",
    "fig9_claims",
    "fig11_claims",
    "table2_row",
    "make_axonn_config",
    "make_baseline_config",
    "best_4d_decompositions",
    "strong_scaling_rows",
    "sweep_4d",
    "weak_scaling_rows",
    "resilience_claims",
    "resilience_report",
    "resilience_rows",
    "AUTOSCALE_SLO_S",
    "autoscale_serving_model",
    "autoscaling_rows",
    "disagg_rows",
    "disagg_serving_model",
    "fleet_claims",
    "fleet_failover",
    "fleet_report",
    "serving_claims",
    "serving_closed_loop",
    "serving_failover",
    "serving_model",
    "serving_report",
    "serving_rows",
    "table1_claims",
    "table1_rows",
    "table2_claims",
    "table2_rows",
]
