"""Experiment: Fig. 5 — inter-layer phase time vs G_inter.

Paper setting (Section V-B): 12 B model on 48 GPUs, batch 2048, microbatch
1, optimizer states removed, G_inter in {6, 12, 24, 48}.  Theorem 5.3
predicts the phase time grows with G_inter via the rising communication-to-
computation ratio."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch

__all__ = ["fig5_rows", "fig5_claims", "PAPER_G_INTER_VALUES"]

PAPER_G_INTER_VALUES = (6, 12, 24, 48)


def fig5_rows(g_inter_values: Sequence[int] = PAPER_G_INTER_VALUES,
              num_gpus: int = 48, batch_size: int = 2048,
              model: str = "12B") -> List[Dict[str, object]]:
    spec = WEAK_SCALING_MODELS[model]
    rows = []
    for g_inter in g_inter_values:
        cfg = AxoNNConfig(
            spec=spec, num_gpus=num_gpus, g_inter=g_inter,
            g_data=num_gpus // g_inter, microbatch_size=1,
            batch_size=batch_size, include_optimizer=False, memopt=False)
        result = simulate_batch(cfg)
        rows.append({
            "g_inter": g_inter,
            "g_data": cfg.g_data,
            "inter_layer_phase_s": result.pipeline_s,
        })
    return rows


def fig5_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    times = [r["inter_layer_phase_s"] for r in
             sorted(rows, key=lambda r: r["g_inter"])]
    return {
        "phase_time_increases_with_g_inter": times == sorted(times),
        "spread_is_material": times[-1] > 1.3 * times[0],
    }
