"""Experiment: Fig. 7 — the two-stream overlap profile.

The paper shows an Nsight Systems capture with the all-reduce chunks and
optimizer buckets interleaving on separate CUDA streams.  Our stand-in is
the discrete-event tracer: the same two tracks, rendered as an ASCII
timeline, plus the quantified overlap statistics computed by the unified
observability layer (:mod:`repro.obs`) from the converted span list."""

from __future__ import annotations

from typing import Dict

from ..cluster import Machine, summit
from ..core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch
from ..obs import from_sim_tracer, overlap_stats
from ..sim import render_ascii_timeline

__all__ = ["fig7_profile", "fig7_claims"]


def fig7_profile(model: str = "12B", num_gpus: int = 48,
                 batch_size: int = 512, coarsening_k: int = 4,
                 bucket_size: int = 16_000_000) -> Dict[str, object]:
    """Run one overlapped batch with tracing; return timeline + stats."""
    spec = WEAK_SCALING_MODELS[model]
    cfg = AxoNNConfig(
        spec=spec, num_gpus=num_gpus, g_inter=6, g_data=num_gpus // 6,
        microbatch_size=1, batch_size=batch_size, memopt=True,
        bucket_size=bucket_size, coarsening_k=coarsening_k)
    machine = Machine(spec=summit(max(1, num_gpus // 6)), trace=True)
    result = simulate_batch(cfg, machine=machine)
    spans = from_sim_tracer(machine.tracer)
    stats = overlap_stats(spans, "allreduce", "optimizer")
    ar = [s for s in spans if s.category == "allreduce"]
    opt = [s for s in spans if s.category == "optimizer"]
    t0 = min(s.start for s in ar + opt)
    ascii_timeline = render_ascii_timeline(machine.tracer, width=100, t0=t0)
    return {
        "result": result,
        "tracer": machine.tracer,
        "spans": spans,
        "ascii": ascii_timeline,
        "allreduce_busy_s": stats["a_busy_s"],
        "optimizer_busy_s": stats["b_busy_s"],
        "overlap_s": stats["overlap_s"],
        "overlap_fraction": stats["overlap_fraction"],
        "n_allreduce_chunks": stats["n_a"],
        "n_optimizer_buckets": stats["n_b"],
    }


def fig7_claims(profile: Dict[str, object]) -> Dict[str, bool]:
    """The phenomenon Fig. 7 demonstrates: substantial interleaving."""
    return {
        "streams_overlap": profile["overlap_s"] > 0,
        "most_optimizer_time_is_hidden": profile["overlap_fraction"] > 0.5,
        "chunked_into_multiple_calls": profile["n_allreduce_chunks"] > 1,
    }
