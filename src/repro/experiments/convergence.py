"""Experiment: Fig. 10 — training-validation loss curves.

The paper trains GPT-2 small on wikitext-103 to completion with serial
PyTorch and with AxoNN on 12 GPUs (G_inter = 2) and shows the loss curves
coincide — validating that the parallelization preserves optimizer
semantics.

Our functional substitution: a scaled-down GPT (the numerics are
architecture-size independent) on the seeded synthetic Zipf-Markov corpus,
trained with the serial reference trainer and with the message-driven
:class:`~repro.runtime.AxoNNTrainer` in the paper's hybrid shape
(G_inter = 2, data parallelism for the rest)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..nn import GPTConfig, LMBatches, SyntheticCorpus
from ..runtime import AxoNNTrainer, SerialTrainer

__all__ = ["fig10_curves", "fig10_claims", "VALIDATION_CONFIG"]

#: Scaled-down GPT-2-style model for the validation run.
VALIDATION_CONFIG = GPTConfig(vocab_size=64, seq_len=16, n_layer=4,
                              n_head=4, hidden=32, dropout=0.0,
                              init_seed=2022)


def fig10_curves(n_batches: int = 30, batch_size: int = 12,
                 g_inter: int = 2, g_data: int = 2,
                 microbatch_size: int = 2,
                 cfg: GPTConfig = VALIDATION_CONFIG,
                 lr: float = 1e-3, seed: int = 0) -> Dict[str, List[float]]:
    """Train serially and with AxoNN on identical data; return both loss
    curves."""
    corpus = SyntheticCorpus(cfg.vocab_size, 20_000, seed=seed)
    batches = LMBatches(corpus, batch_size=batch_size, seq_len=cfg.seq_len)
    serial = SerialTrainer(cfg, lr=lr)
    parallel = AxoNNTrainer(cfg, g_inter=g_inter, g_data=g_data,
                            microbatch_size=microbatch_size, lr=lr)
    serial_losses, parallel_losses = [], []
    for i in range(n_batches):
        x, y = batches.batch(i)
        serial_losses.append(serial.train_batch(x, y))
        parallel_losses.append(parallel.train_batch(x, y).loss)
    return {"serial": serial_losses, "axonn": parallel_losses}


def fig10_claims(curves: Dict[str, List[float]]) -> Dict[str, bool]:
    serial = np.asarray(curves["serial"])
    axonn = np.asarray(curves["axonn"])
    n = len(serial)
    return {
        "curves_coincide": bool(
            np.allclose(serial, axonn, rtol=5e-4, atol=5e-4)),
        "training_converges": bool(
            np.mean(serial[-max(1, n // 5):])
            < np.mean(serial[:max(1, n // 5)])),
    }
