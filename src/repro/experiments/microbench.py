"""Experiment: Figs. 3-4 — the OSU-style communication microbenchmarks.

Regenerates the measurements that motivated AxoNN's backend split (MPI for
point-to-point, NCCL for collectives)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cluster import MB
from ..comm import DEFAULT_COLL_SIZES, DEFAULT_P2P_SIZES, osu_allreduce, \
    osu_latency

__all__ = ["fig3_rows", "fig4_rows", "fig3_claims", "fig4_claims"]


def fig3_rows(sizes: Optional[Sequence[int]] = None) -> List[Dict[str, object]]:
    """Fig. 3: p2p ping-pong latency, 4 series (backend x scope)."""
    sizes = sizes if sizes is not None else DEFAULT_P2P_SIZES
    rows: List[Dict[str, object]] = []
    for backend in ("mpi", "nccl"):
        for intra in (True, False):
            rows.extend(osu_latency(backend, intra, sizes))
    return rows


def fig4_rows(sizes: Optional[Sequence[int]] = None) -> List[Dict[str, object]]:
    """Fig. 4: all-reduce latency, 4 series (backend x 6/12 ranks)."""
    sizes = sizes if sizes is not None else DEFAULT_COLL_SIZES
    rows: List[Dict[str, object]] = []
    for backend in ("mpi", "nccl"):
        for ranks in (6, 12):
            rows.extend(osu_allreduce(backend, ranks, sizes))
    return rows


def _series(rows, **match):
    return {r["bytes"]: r["latency_s"] for r in rows
            if all(r[k] == v for k, v in match.items())}


def fig3_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """The paper's Fig. 3 qualitative claims, evaluated on the rows."""
    mpi_intra = _series(rows, backend="mpi", scope="intra-node")
    nccl_intra = _series(rows, backend="nccl", scope="intra-node")
    mpi_inter = _series(rows, backend="mpi", scope="inter-node")
    nccl_inter = _series(rows, backend="nccl", scope="inter-node")
    roi = [b for b in mpi_intra if 1 * MB <= b <= 50 * MB]
    return {
        "mpi_beats_nccl_intra_node_in_roi": all(
            mpi_intra[b] < nccl_intra[b] for b in roi),
        "inter_node_nearly_identical": all(
            0.5 < mpi_inter[b] / nccl_inter[b] < 2.0 for b in roi),
    }


def fig4_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """The paper's Fig. 4 qualitative claims, evaluated on the rows."""
    out = {}
    for ranks in (6, 12):
        mpi = _series(rows, backend="mpi", ranks=ranks)
        nccl = _series(rows, backend="nccl", ranks=ranks)
        big = [b for b in mpi if b >= 4 * MB]
        out[f"nccl_beats_mpi_{ranks}_ranks_large"] = all(
            nccl[b] < mpi[b] for b in big)
    return out
