"""Experiment: MTBF x checkpoint-interval sweep vs. the Young/Daly optimum.

At paper scale (Table I zoo on 48..384 GPUs) a training run outlives the
cluster's mean time between failures many times over, so the checkpoint
interval becomes a first-order throughput knob: checkpoint too often and
the writes dominate, too rarely and every failure throws away a long
stretch of work.  The classic first-order optimum is Young/Daly's
``sqrt(2 * C * M)`` (checkpoint write cost *C*, system MTBF *M*).

This experiment builds a :class:`~repro.resilience.FailureModel` per model
of the zoo — step time from the analytic performance model
(:func:`repro.core.estimate_batch_time`), checkpoint cost from the
optimizer-state footprint over the parallel-filesystem bandwidth, MTBF
from a per-GPU rate — sweeps the checkpoint interval on the DES, fits the
empirical optimum, and checks it lands within 20% of Young/Daly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import WEAK_SCALING_MODELS, estimate_batch_time
from ..resilience import (FailureModel, fit_optimal_interval,
                          sweep_intervals, young_daly_interval_s)
from .scaling import MODEL_GPUS, make_axonn_config

__all__ = ["resilience_rows", "resilience_claims", "resilience_report",
           "BYTES_PER_PARAM", "PFS_WRITE_BW_PER_NODE", "GPUS_PER_NODE"]

#: Checkpoint footprint per parameter: fp32 master + two fp32 Adam moments
#: + the fp16 weights (Section V-B accounting minus transient gradients).
BYTES_PER_PARAM = 14

#: Burst-buffer / PFS write bandwidth per 6-GPU node, bytes/s.
PFS_WRITE_BW_PER_NODE = 2.0e9

GPUS_PER_NODE = 6

#: Interval candidates as multiples of the Young/Daly prediction — a
#: geometric bracket so the fit sees both regimes (write-bound, rework-bound).
_INTERVAL_FACTORS = (0.25, 0.4, 0.6, 0.8, 1.0, 1.4, 2.0, 3.0, 4.5)


def _failure_model(model: str, *, batch_size: int, per_gpu_mtbf_h: float,
                   restart_s: float, total_steps: int) -> FailureModel:
    gpus = MODEL_GPUS[model]
    cfg = make_axonn_config(model, batch_size=batch_size)
    step_time = estimate_batch_time(cfg)
    ckpt_bytes = WEAK_SCALING_MODELS[model].total_params * BYTES_PER_PARAM
    nodes = max(1, gpus // GPUS_PER_NODE)
    ckpt_s = ckpt_bytes / (nodes * PFS_WRITE_BW_PER_NODE)
    mtbf_s = per_gpu_mtbf_h * 3600.0 / gpus
    return FailureModel(step_time_s=step_time, checkpoint_write_s=ckpt_s,
                        restart_s=restart_s, mtbf_s=mtbf_s,
                        interval_steps=1, total_steps=total_steps)


def resilience_rows(models: Optional[Sequence[str]] = None, *,
                    batch_size: int = 16384,
                    per_gpu_mtbf_h: float = 10_000.0,
                    restart_s: float = 300.0,
                    total_steps: int = 12_000,
                    seeds: Sequence[int] = (0, 1, 2)) -> List[Dict]:
    """One row per model of the zoo: swept intervals, fitted optimum,
    Young/Daly prediction, and their ratio."""
    rows = []
    for model in (models if models is not None else list(MODEL_GPUS)):
        base = _failure_model(model, batch_size=batch_size,
                              per_gpu_mtbf_h=per_gpu_mtbf_h,
                              restart_s=restart_s, total_steps=total_steps)
        yd_s = young_daly_interval_s(base.mtbf_s, base.checkpoint_write_s)
        yd_steps = yd_s / base.step_time_s
        intervals = sorted({max(1, round(yd_steps * f))
                            for f in _INTERVAL_FACTORS})
        sweep = sweep_intervals(base, intervals, list(seeds))
        fitted_s = fit_optimal_interval(sweep)
        best = max(sweep, key=lambda r: r["efficiency"])
        rows.append({
            "model": model,
            "gpus": MODEL_GPUS[model],
            "step_time_s": base.step_time_s,
            "checkpoint_write_s": base.checkpoint_write_s,
            "mtbf_s": base.mtbf_s,
            "young_daly_s": yd_s,
            "fitted_optimum_s": fitted_s,
            "optimum_ratio": fitted_s / yd_s,
            "best_measured_interval_s": best["interval_s"],
            "best_measured_efficiency": best["efficiency"],
            "sweep": sweep,
        })
    return rows


def resilience_claims(rows: List[Dict], tolerance: float = 0.20) -> Dict:
    """The paper-style qualitative checks on the sweep.

    * the fitted optimal interval is within ``tolerance`` of Young/Daly
      for every model/scale;
    * efficiency at the optimum stays above 90% (faults are a tax, not a
      wall, at these MTBFs);
    * larger machines (shorter MTBF) want shorter intervals.
    """
    within = {r["model"]: abs(r["optimum_ratio"] - 1.0) <= tolerance
              for r in rows}
    eff_ok = {r["model"]: r["best_measured_efficiency"] > 0.90 for r in rows}
    by_gpus = sorted(rows, key=lambda r: r["gpus"])
    shrinking = all(a["fitted_optimum_s"] >= b["fitted_optimum_s"]
                    for a, b in zip(by_gpus, by_gpus[1:])) \
        if len(by_gpus) > 1 else True
    return {
        "optimum_within_tolerance": within,
        "all_within_tolerance": all(within.values()),
        "tolerance": tolerance,
        "efficiency_above_90pct": eff_ok,
        "interval_shrinks_with_scale": shrinking,
    }


def resilience_report(models: Optional[Sequence[str]] = None,
                      **kwargs) -> Dict:
    """JSON-ready report: rows + claims (the ``repro faults`` sim output)."""
    rows = resilience_rows(models, **kwargs)
    return {
        "experiment": "mtbf_x_checkpoint_interval",
        "rows": rows,
        "claims": resilience_claims(rows),
    }
