"""Experiment: elastic-fleet economics — autoscaling, disaggregation, SLOs.

Three pinned DES scenarios back the fleet layer's headline claims:

* **Autoscaling under diurnal traffic** — a 5-replica peak-provisioned
  static fleet vs the reactive (hysteresis + cooldown) and predictive
  (sinusoid-fit) autoscalers on the same seeded diurnal trace.  Both
  elastic policies must hold the interactive p99-TTFT SLO the static
  fleet holds while paying >= 25% fewer replica-seconds.

* **Prefill/decode disaggregation** — at equal hardware (8 replicas) on
  a decode-heavy mix, a 1 prefill + 7 decode split beats the unified
  pool on p99 TTFT: prefills never queue behind wide in-flight decode
  groups, and the deeper prefill admission window hides the pipeline
  bubbles single-prompt groups would otherwise create (see
  :class:`~repro.fleet.FleetModel.prefill_pipeline_limit`).

* **Shared-path failure handling** — a crash and a drain-then-retire in
  one elastic run; every admitted request finishes because both events
  flow through the same decommission/re-admission path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..fleet import (AdmissionController, FleetModel, FleetStats,
                     PredictivePolicy, ReactivePolicy, SLOClass,
                     StaticPolicy, service_rate_per_replica, simulate_fleet)
from ..resilience import Fault, FaultPlan
from ..serve import ArrivalSpec, RequestSpec, ServingModel

__all__ = ["AUTOSCALE_SLO_S", "autoscale_serving_model",
           "disagg_serving_model", "autoscaling_rows", "disagg_rows",
           "fleet_failover", "fleet_claims", "fleet_report"]

#: interactive TTFT budget every policy is judged against
AUTOSCALE_SLO_S = 1.0

#: offered load for the diurnal sweep, in units of one replica's mu
_DIURNAL_LOAD_REPLICAS = 1.7

#: offered load for the disaggregation comparison (fraction of 8-replica
#: fleet capacity; past ~0.65 the single prefill replica saturates)
_DISAGG_LOAD = 0.6


def autoscale_serving_model() -> ServingModel:
    """The diurnal scenario's replica shape (4-deep pipeline)."""
    return ServingModel(n_replicas=5, g_inter=4, stage_alpha_s=8e-3,
                        decode_s_per_item=4e-3, prefill_s_per_token=8e-4,
                        max_batch=8)


def disagg_serving_model() -> ServingModel:
    """The disaggregation scenario: wide decode batches make each decode
    pass hold a stage ~4x longer than a prompt pass, which is precisely
    the interference disaggregation removes."""
    return ServingModel(n_replicas=8, g_inter=4, stage_alpha_s=8e-3,
                        decode_s_per_item=4e-3, prefill_s_per_token=8e-4,
                        max_batch=32)


def _autoscale_spec(seed: int) -> RequestSpec:
    return RequestSpec(mean_prompt=8, mean_new_tokens=8, seed=seed)


def _decode_heavy_spec(seed: int) -> RequestSpec:
    return RequestSpec(mean_prompt=32, mean_new_tokens=64, seed=seed)


def _admission() -> AdmissionController:
    return AdmissionController(classes=(
        SLOClass(name="interactive", priority=0,
                 ttft_slo_s=AUTOSCALE_SLO_S, max_wait_s=5.0),))


def _policy_row(name: str, stats: FleetStats) -> Dict[str, float]:
    return {
        "policy": name,
        "replica_seconds": stats.replica_seconds,
        "ttft_p50_ms": stats.ttft_percentile(50) * 1e3,
        "ttft_p99_ms": stats.ttft_percentile(99) * 1e3,
        "tpot_ms": stats.mean_tpot_s * 1e3,
        "slo_attainment": stats.attainment_at(AUTOSCALE_SLO_S),
        "completed": float(stats.n_completed),
        "rejected_backpressure": float(stats.n_rejected_backpressure),
        "rejected_admission": float(stats.n_rejected_admission),
        "rejected_down": float(stats.n_rejected_down),
        "cold_starts": float(stats.n_cold_starts),
        "scale_events": float(len(stats.scale_events)),
        "peak_replicas": float(stats.peak_replicas),
    }


def autoscaling_rows(fast: bool = False, *, seed: int = 0
                     ) -> List[Dict[str, float]]:
    """Static vs reactive vs predictive on the seeded diurnal trace."""
    serving = autoscale_serving_model()
    spec = _autoscale_spec(seed)
    mu = service_rate_per_replica(serving, spec)
    # fast runs one diurnal cycle instead of two; the period itself must
    # stay slow relative to cold start + cooldown or no controller tracks
    horizon = 300.0 if fast else 600.0
    period = 300.0
    arrivals = ArrivalSpec(rate_per_s=_DIURNAL_LOAD_REPLICAS * mu,
                           seed=seed, kind="diurnal",
                           diurnal_period_s=period,
                           diurnal_amplitude=0.8)
    model = FleetModel(serving=serving, cold_start_s=5.0,
                       control_interval_s=1.0, drain_timeout_s=10.0)
    policies = [
        ("static-peak", StaticPolicy(serving.n_replicas)),
        ("reactive", ReactivePolicy(min_replicas=1,
                                    max_replicas=serving.n_replicas,
                                    cooldown_s=5.0)),
        ("predictive", PredictivePolicy(period_s=period, lead_s=10.0,
                                        min_replicas=1,
                                        max_replicas=serving.n_replicas,
                                        target_utilization=0.6)),
    ]
    rows = []
    for name, policy in policies:
        stats = simulate_fleet(model, policy, arrivals, horizon,
                               request_spec=spec, seq_len=64,
                               admission=_admission())
        rows.append(_policy_row(name, stats))
    return rows


def disagg_rows(fast: bool = False, *, seed: int = 0
                ) -> List[Dict[str, float]]:
    """Unified 8-replica pool vs 1 prefill + 7 decode at equal hardware."""
    serving = disagg_serving_model()
    spec = _decode_heavy_spec(seed)
    mu = service_rate_per_replica(serving, spec)
    horizon = 60.0 if fast else 120.0
    arrivals = ArrivalSpec(
        rate_per_s=_DISAGG_LOAD * serving.n_replicas * mu, seed=seed)
    runs = [
        ("unified", FleetModel(serving=serving),
         StaticPolicy(serving.n_replicas)),
        ("disaggregated", FleetModel(serving=serving, disaggregated=True,
                                     n_prefill_replicas=1,
                                     n_decode_replicas=7,
                                     kv_transfer_s_per_token=1e-5),
         StaticPolicy(7)),
    ]
    rows = []
    for name, model, policy in runs:
        stats = simulate_fleet(model, policy, arrivals, horizon,
                               request_spec=spec, seq_len=128,
                               admission=_admission())
        row = _policy_row(name, stats)
        row["throughput_tok_s"] = stats.throughput_tok_s
        row["handoffs"] = float(stats.n_handoffs)
        rows.append(row)
    return rows


def fleet_failover(fast: bool = False, *, seed: int = 0
                   ) -> Dict[str, float]:
    """One crash and one planned retire mid-run on the elastic fleet;
    both flow through the shared decommission path, so nothing is lost."""
    serving = autoscale_serving_model()
    spec = _autoscale_spec(seed)
    mu = service_rate_per_replica(serving, spec)
    horizon = 30.0 if fast else 60.0
    arrivals = ArrivalSpec(rate_per_s=1.2 * mu, seed=seed)
    model = FleetModel(serving=serving, cold_start_s=2.0,
                       control_interval_s=1.0, drain_timeout_s=5.0)
    plan = FaultPlan.of(
        Fault(kind="crash", rank=0, tick=int(horizon // 3)),
        Fault(kind="retire", rank=1, tick=int(2 * horizon // 3)))
    stats = simulate_fleet(model, StaticPolicy(3), arrivals, horizon,
                           request_spec=spec, seq_len=64,
                           admission=_admission(), plan=plan)
    return {
        "crash_at_s": float(int(horizon // 3)),
        "retire_at_s": float(int(2 * horizon // 3)),
        "arrived": float(stats.n_arrived),
        "admitted": float(stats.n_admitted),
        "completed": float(stats.n_completed),
        "restarted": float(stats.n_restarts),
        "crashes": float(stats.n_crashes),
        "retired": float(stats.n_retired),
        "rejected_down": float(stats.n_rejected_down),
        "lost": float(stats.n_admitted - stats.n_completed),
    }


def fleet_claims(auto_rows: List[Dict[str, float]],
                 disagg: Optional[List[Dict[str, float]]] = None,
                 failover: Optional[Dict[str, float]] = None
                 ) -> Dict[str, bool]:
    """The acceptance checklist over the three scenarios."""
    by_policy = {r["policy"]: r for r in auto_rows}
    static = by_policy["static-peak"]
    slo_ms = AUTOSCALE_SLO_S * 1e3
    claims: Dict[str, bool] = {}
    for name in ("reactive", "predictive"):
        row = by_policy[name]
        claims[f"{name} holds the p99 TTFT SLO the static fleet holds"] = \
            row["ttft_p99_ms"] <= slo_ms and static["ttft_p99_ms"] <= slo_ms
        claims[f"{name} pays >= 25% fewer replica-seconds than static"] = \
            row["replica_seconds"] <= 0.75 * static["replica_seconds"]
        claims[f"{name} completes the trace (no rejects, nothing lost)"] = \
            (row["rejected_backpressure"] + row["rejected_admission"]
             + row["rejected_down"] == 0
             and row["completed"] == static["completed"])
    if disagg is not None:
        uni = next(r for r in disagg if r["policy"] == "unified")
        dis = next(r for r in disagg if r["policy"] == "disaggregated")
        claims["disaggregated beats unified p99 TTFT at equal hardware"] = \
            dis["ttft_p99_ms"] < uni["ttft_p99_ms"]
        claims["disaggregation costs no throughput or rejections"] = \
            (dis["throughput_tok_s"] >= 0.99 * uni["throughput_tok_s"]
             and dis["rejected_backpressure"] + dis["rejected_admission"]
             + dis["rejected_down"] == 0)
        claims["equal hardware: same replica-seconds both ways"] = \
            abs(dis["replica_seconds"] - uni["replica_seconds"]) \
            <= 1e-6 * uni["replica_seconds"]
    if failover is not None:
        claims["crash + retire both exercised on the shared path"] = \
            failover["crashes"] >= 1 and failover["retired"] >= 1
        claims["failover re-admits orphans (restarts observed)"] = \
            failover["restarted"] > 0
        claims["every admitted request eventually served"] = \
            failover["lost"] == 0
    return claims


def fleet_report(fast: bool = False, *, seed: int = 0) -> Dict[str, object]:
    """Everything the CLI/tests need in one call."""
    auto_rows = autoscaling_rows(fast, seed=seed)
    disagg = disagg_rows(fast, seed=seed)
    failover = fleet_failover(fast, seed=seed)
    return {
        "autoscaling": auto_rows,
        "disaggregation": disagg,
        "failover": failover,
        "claims": fleet_claims(auto_rows, disagg, failover),
    }
