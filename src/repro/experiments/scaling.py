"""Experiments: Fig. 9 (weak scaling), Fig. 11 (strong scaling), Table II.

The weak-scaling study trains the Table I model zoo (12/24/50/100 B) on
48/96/192/384 GPUs at batch 16384; the strong-scaling study trains the 12 B
model on 48..384 GPUs with the batch scaling 4096 -> 32768.  Each framework
runs its tuned hyperparameters — by default the paper's own Table II values
(:data:`PAPER_TABLE2`), with the tuner (:mod:`repro.tuning`) available as a
cross-check."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import ThreeDConfig, simulate_baseline_batch
from ..core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch

__all__ = ["PAPER_TABLE2", "Table2Row", "table2_row", "weak_scaling_rows",
           "strong_scaling_rows", "fig9_claims", "fig11_claims",
           "make_axonn_config", "make_baseline_config"]


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table II."""

    model: str
    framework: str
    microbatch: int
    g_intra: Optional[int]
    g_inter: int
    g_data: int


#: The paper's tuned hyperparameters (Table II), verbatim.
PAPER_TABLE2: List[Table2Row] = [
    Table2Row("12B", "axonn", 8, None, 6, 8),
    Table2Row("12B", "deepspeed", 2, 3, 2, 8),
    Table2Row("12B", "megatron", 8, 3, 16, 1),
    Table2Row("24B", "axonn", 4, None, 12, 8),
    Table2Row("24B", "deepspeed", 2, 3, 4, 8),
    Table2Row("24B", "megatron", 1, 3, 16, 2),
    Table2Row("50B", "axonn", 4, None, 24, 8),
    Table2Row("50B", "deepspeed", 1, 3, 16, 4),
    Table2Row("50B", "megatron", 8, 6, 32, 1),
    Table2Row("100B", "axonn", 2, None, 48, 8),
    Table2Row("100B", "deepspeed", 1, 3, 32, 4),
    Table2Row("100B", "megatron", 4, 12, 32, 1),
]

#: Table I GPU counts per model.
MODEL_GPUS = {"12B": 48, "24B": 96, "50B": 192, "100B": 384}


def table2_row(model: str, framework: str) -> Table2Row:
    for row in PAPER_TABLE2:
        if row.model == model and row.framework == framework:
            return row
    raise KeyError(f"no Table II row for {model}/{framework}")


def make_axonn_config(model: str, batch_size: int,
                      num_gpus: Optional[int] = None,
                      g_data: Optional[int] = None) -> AxoNNConfig:
    """AxoNN config from the paper's Table II row (optionally rescaling
    G_data for strong scaling)."""
    row = table2_row(model, "axonn")
    gpus = num_gpus if num_gpus is not None else MODEL_GPUS[model]
    gd = g_data if g_data is not None else gpus // row.g_inter
    return AxoNNConfig(
        spec=WEAK_SCALING_MODELS[model], num_gpus=row.g_inter * gd,
        g_inter=row.g_inter, g_data=gd, microbatch_size=row.microbatch,
        batch_size=batch_size, memopt=True, bucket_size=4_000_000,
        coarsening_k=4)


def make_baseline_config(model: str, framework: str, batch_size: int,
                         num_gpus: Optional[int] = None,
                         g_data: Optional[int] = None) -> ThreeDConfig:
    row = table2_row(model, framework)
    gpus = num_gpus if num_gpus is not None else MODEL_GPUS[model]
    gd = g_data if g_data is not None \
        else gpus // (row.g_inter * row.g_intra)
    return ThreeDConfig(
        spec=WEAK_SCALING_MODELS[model],
        num_gpus=row.g_intra * row.g_inter * gd,
        g_intra=row.g_intra, g_inter=row.g_inter, g_data=gd,
        microbatch_size=row.microbatch, batch_size=batch_size,
        framework=framework)


def weak_scaling_rows(models: Sequence[str] = ("12B", "24B", "50B", "100B"),
                      batch_size: int = 16384,
                      frameworks: Sequence[str] = ("axonn", "deepspeed",
                                                   "megatron")
                      ) -> List[Dict[str, object]]:
    """Fig. 9 data: training days and % of peak per model per framework."""
    rows = []
    for model in models:
        for framework in frameworks:
            if framework == "axonn":
                result = simulate_batch(make_axonn_config(model, batch_size))
            else:
                result = simulate_baseline_batch(
                    make_baseline_config(model, framework, batch_size))
            rows.append({
                "model": model,
                "gpus": MODEL_GPUS[model],
                "framework": framework,
                "batch_time_s": result.batch_time_s,
                "training_days": result.training_days,
                "pct_peak": result.pct_of_peak,
            })
    return rows


def strong_scaling_rows(model: str = "12B",
                        gpu_counts: Sequence[int] = (48, 96, 192, 384),
                        frameworks: Sequence[str] = ("axonn", "deepspeed",
                                                     "megatron")
                        ) -> List[Dict[str, object]]:
    """Fig. 11 data: 12 B model, batch scaling 4096 at 48 GPUs to 32768 at
    384 GPUs (linear in the GPU count), G_data scaled with the GPU count."""
    rows = []
    for gpus in gpu_counts:
        batch_size = 4096 * gpus // 48
        for framework in frameworks:
            if framework == "axonn":
                cfg = make_axonn_config(model, batch_size, num_gpus=gpus)
                result = simulate_batch(cfg)
            else:
                cfg = make_baseline_config(model, framework, batch_size,
                                           num_gpus=gpus)
                result = simulate_baseline_batch(cfg)
            rows.append({
                "model": model,
                "gpus": gpus,
                "batch_size": batch_size,
                "framework": framework,
                "batch_time_s": result.batch_time_s,
                "training_days": result.training_days,
                "pct_peak": result.pct_of_peak,
            })
    return rows


def _by(rows, **match):
    return [r for r in rows
            if all(r[k] == v for k, v in match.items())]


def fig9_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """The paper's weak-scaling claims."""
    claims = {}
    models = sorted({r["model"] for r in rows})
    for model in models:
        ax = _by(rows, model=model, framework="axonn")[0]
        ds = _by(rows, model=model, framework="deepspeed")[0]
        mg = _by(rows, model=model, framework="megatron")[0]
        claims[f"{model}_axonn_fastest"] = (
            ax["batch_time_s"] < ds["batch_time_s"]
            and ax["batch_time_s"] < mg["batch_time_s"])
        claims[f"{model}_deepspeed_beats_megatron"] = (
            ds["batch_time_s"] < mg["batch_time_s"])
        claims[f"{model}_axonn_peak_band"] = 42 <= ax["pct_peak"] <= 62
        # Paper: 22-37 days saved vs DeepSpeed; we require a material
        # multi-week saving (our 24B point lands near two weeks).
        claims[f"{model}_saves_weeks_vs_deepspeed"] = (
            ds["training_days"] - ax["training_days"] > 10)
    return claims


def fig11_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """The paper's strong-scaling claims (12 B, 48->384 GPUs)."""
    claims = {}
    gpu_counts = sorted({r["gpus"] for r in rows})
    for gpus in gpu_counts:
        ax = _by(rows, gpus=gpus, framework="axonn")[0]
        ds = _by(rows, gpus=gpus, framework="deepspeed")[0]
        mg = _by(rows, gpus=gpus, framework="megatron")[0]
        claims[f"{gpus}gpus_axonn_fastest"] = (
            ax["batch_time_s"] < ds["batch_time_s"] < mg["batch_time_s"]
            or ax["batch_time_s"] < mg["batch_time_s"] < ds["batch_time_s"])
    # Batch size scales linearly with GPUs, so near-perfect strong scaling
    # means a flat per-sample-per-GPU time (equivalently: flat % of peak).
    ax_times = [r["batch_time_s"] * r["gpus"] / r["batch_size"]
                for r in _by(rows, framework="axonn")]
    claims["axonn_per_sample_per_gpu_time_roughly_flat"] = (
        max(ax_times) < 1.3 * min(ax_times))
    return claims
