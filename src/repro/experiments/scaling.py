"""Experiments: Fig. 9 (weak scaling), Fig. 11 (strong scaling), Table II.

The weak-scaling study trains the Table I model zoo (12/24/50/100 B) on
48/96/192/384 GPUs at batch 16384; the strong-scaling study trains the 12 B
model on 48..384 GPUs with the batch scaling 4096 -> 32768.  Each framework
runs its tuned hyperparameters — by default the paper's own Table II values
(:data:`PAPER_TABLE2`), with the tuner (:mod:`repro.tuning`) available as a
cross-check."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import ThreeDConfig, simulate_baseline_batch
from ..core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch

__all__ = ["PAPER_TABLE2", "Table2Row", "table2_row", "weak_scaling_rows",
           "strong_scaling_rows", "fig9_claims", "fig11_claims",
           "make_axonn_config", "make_baseline_config", "sweep_4d",
           "best_4d_decompositions"]


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table II."""

    model: str
    framework: str
    microbatch: int
    g_intra: Optional[int]
    g_inter: int
    g_data: int


#: The paper's tuned hyperparameters (Table II), verbatim.
PAPER_TABLE2: List[Table2Row] = [
    Table2Row("12B", "axonn", 8, None, 6, 8),
    Table2Row("12B", "deepspeed", 2, 3, 2, 8),
    Table2Row("12B", "megatron", 8, 3, 16, 1),
    Table2Row("24B", "axonn", 4, None, 12, 8),
    Table2Row("24B", "deepspeed", 2, 3, 4, 8),
    Table2Row("24B", "megatron", 1, 3, 16, 2),
    Table2Row("50B", "axonn", 4, None, 24, 8),
    Table2Row("50B", "deepspeed", 1, 3, 16, 4),
    Table2Row("50B", "megatron", 8, 6, 32, 1),
    Table2Row("100B", "axonn", 2, None, 48, 8),
    Table2Row("100B", "deepspeed", 1, 3, 32, 4),
    Table2Row("100B", "megatron", 4, 12, 32, 1),
]

#: Table I GPU counts per model.
MODEL_GPUS = {"12B": 48, "24B": 96, "50B": 192, "100B": 384}


def table2_row(model: str, framework: str) -> Table2Row:
    for row in PAPER_TABLE2:
        if row.model == model and row.framework == framework:
            return row
    raise KeyError(f"no Table II row for {model}/{framework}")


def make_axonn_config(model: str, batch_size: int,
                      num_gpus: Optional[int] = None,
                      g_data: Optional[int] = None) -> AxoNNConfig:
    """AxoNN config from the paper's Table II row (optionally rescaling
    G_data for strong scaling)."""
    row = table2_row(model, "axonn")
    gpus = num_gpus if num_gpus is not None else MODEL_GPUS[model]
    gd = g_data if g_data is not None else gpus // row.g_inter
    return AxoNNConfig(
        spec=WEAK_SCALING_MODELS[model], num_gpus=row.g_inter * gd,
        g_inter=row.g_inter, g_data=gd, microbatch_size=row.microbatch,
        batch_size=batch_size, memopt=True, bucket_size=4_000_000,
        coarsening_k=4)


def make_baseline_config(model: str, framework: str, batch_size: int,
                         num_gpus: Optional[int] = None,
                         g_data: Optional[int] = None) -> ThreeDConfig:
    row = table2_row(model, framework)
    gpus = num_gpus if num_gpus is not None else MODEL_GPUS[model]
    gd = g_data if g_data is not None \
        else gpus // (row.g_inter * row.g_intra)
    return ThreeDConfig(
        spec=WEAK_SCALING_MODELS[model],
        num_gpus=row.g_intra * row.g_inter * gd,
        g_intra=row.g_intra, g_inter=row.g_inter, g_data=gd,
        microbatch_size=row.microbatch, batch_size=batch_size,
        framework=framework)


def weak_scaling_rows(models: Sequence[str] = ("12B", "24B", "50B", "100B"),
                      batch_size: int = 16384,
                      frameworks: Sequence[str] = ("axonn", "deepspeed",
                                                   "megatron")
                      ) -> List[Dict[str, object]]:
    """Fig. 9 data: training days and % of peak per model per framework."""
    rows = []
    for model in models:
        for framework in frameworks:
            if framework == "axonn":
                result = simulate_batch(make_axonn_config(model, batch_size))
            else:
                result = simulate_baseline_batch(
                    make_baseline_config(model, framework, batch_size))
            rows.append({
                "model": model,
                "gpus": MODEL_GPUS[model],
                "framework": framework,
                "batch_time_s": result.batch_time_s,
                "training_days": result.training_days,
                "pct_peak": result.pct_of_peak,
            })
    return rows


def strong_scaling_rows(model: str = "12B",
                        gpu_counts: Sequence[int] = (48, 96, 192, 384),
                        frameworks: Sequence[str] = ("axonn", "deepspeed",
                                                     "megatron")
                        ) -> List[Dict[str, object]]:
    """Fig. 11 data: 12 B model, batch scaling 4096 at 48 GPUs to 32768 at
    384 GPUs (linear in the GPU count), G_data scaled with the GPU count."""
    rows = []
    for gpus in gpu_counts:
        batch_size = 4096 * gpus // 48
        for framework in frameworks:
            if framework == "axonn":
                cfg = make_axonn_config(model, batch_size, num_gpus=gpus)
                result = simulate_batch(cfg)
            else:
                cfg = make_baseline_config(model, framework, batch_size,
                                           num_gpus=gpus)
                result = simulate_baseline_batch(cfg)
            rows.append({
                "model": model,
                "gpus": gpus,
                "batch_size": batch_size,
                "framework": framework,
                "batch_time_s": result.batch_time_s,
                "training_days": result.training_days,
                "pct_peak": result.pct_of_peak,
            })
    return rows


def sweep_4d(cluster_sizes: Sequence[int] = (8, 16, 32, 64),
             model: str = "12B", microbatch: int = 4,
             batch_per_gpu: int = 64,
             max_g_intra: int = 8,
             memopt: bool = False) -> List[Dict[str, object]]:
    """DES sweep over every 4D decomposition of each cluster size.

    For each GPU count ``G`` the sweep enumerates all
    ``g_intra x g_inter x g_data = G`` with a power-of-two tensor-parallel
    degree capped at ``min(max_g_intra, n_head)``, simulates one batch per
    decomposition, and records batch time, memory and feasibility.  The
    batch grows linearly with the cluster (weak scaling), so the winning
    decomposition shifts as collective cost and per-GPU memory trade off.

    ``memopt`` defaults to off: with the ``20 phi`` optimizer state
    resident on the GPU, the tensor axis is what makes deep stages *fit*
    (the Megatron regime) — exactly the trade the sweep is meant to
    expose.  With memopt on, CPU offload already solves memory and pure
    pipeline+data decompositions tend to win on time.
    """
    spec = WEAK_SCALING_MODELS[model]
    rows: List[Dict[str, object]] = []
    for gpus in cluster_sizes:
        batch_size = batch_per_gpu * gpus
        g_intra = 1
        while g_intra <= min(max_g_intra, spec.n_head, gpus):
            if gpus % g_intra == 0:
                rest = gpus // g_intra
                for g_inter in range(1, min(rest, spec.n_layer) + 1):
                    if rest % g_inter:
                        continue
                    g_data = rest // g_inter
                    if batch_size % (g_data * microbatch):
                        continue
                    cfg = AxoNNConfig(
                        spec=spec, num_gpus=gpus, g_inter=g_inter,
                        g_data=g_data, g_intra=g_intra,
                        microbatch_size=microbatch, batch_size=batch_size,
                        memopt=memopt)
                    result = simulate_batch(cfg)
                    row = result.as_row()
                    row["batch_size"] = batch_size
                    rows.append(row)
            g_intra *= 2
    return rows


def best_4d_decompositions(rows: List[Dict[str, object]]
                           ) -> List[Dict[str, object]]:
    """Best decomposition per cluster size: fastest *feasible* one, or the
    fastest overall when nothing fits (flagged by ``feasible=False``)."""
    best: List[Dict[str, object]] = []
    for gpus in sorted({r["gpus"] for r in rows}):
        candidates = [r for r in rows if r["gpus"] == gpus]
        feasible = [r for r in candidates if r["feasible"]]
        pool = feasible or candidates
        best.append(min(pool, key=lambda r: r["batch_time_s"]))
    return best


def _by(rows, **match):
    return [r for r in rows
            if all(r[k] == v for k, v in match.items())]


def fig9_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """The paper's weak-scaling claims."""
    claims = {}
    models = sorted({r["model"] for r in rows})
    for model in models:
        ax = _by(rows, model=model, framework="axonn")[0]
        ds = _by(rows, model=model, framework="deepspeed")[0]
        mg = _by(rows, model=model, framework="megatron")[0]
        claims[f"{model}_axonn_fastest"] = (
            ax["batch_time_s"] < ds["batch_time_s"]
            and ax["batch_time_s"] < mg["batch_time_s"])
        claims[f"{model}_deepspeed_beats_megatron"] = (
            ds["batch_time_s"] < mg["batch_time_s"])
        claims[f"{model}_axonn_peak_band"] = 42 <= ax["pct_peak"] <= 62
        # Paper: 22-37 days saved vs DeepSpeed; we require a material
        # multi-week saving (our 24B point lands near two weeks).
        claims[f"{model}_saves_weeks_vs_deepspeed"] = (
            ds["training_days"] - ax["training_days"] > 10)
    return claims


def fig11_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """The paper's strong-scaling claims (12 B, 48->384 GPUs)."""
    claims = {}
    gpu_counts = sorted({r["gpus"] for r in rows})
    for gpus in gpu_counts:
        ax = _by(rows, gpus=gpus, framework="axonn")[0]
        ds = _by(rows, gpus=gpus, framework="deepspeed")[0]
        mg = _by(rows, gpus=gpus, framework="megatron")[0]
        claims[f"{gpus}gpus_axonn_fastest"] = (
            ax["batch_time_s"] < ds["batch_time_s"] < mg["batch_time_s"]
            or ax["batch_time_s"] < mg["batch_time_s"] < ds["batch_time_s"])
    # Batch size scales linearly with GPUs, so near-perfect strong scaling
    # means a flat per-sample-per-GPU time (equivalently: flat % of peak).
    ax_times = [r["batch_time_s"] * r["gpus"] / r["batch_size"]
                for r in _by(rows, framework="axonn")]
    claims["axonn_per_sample_per_gpu_time_roughly_flat"] = (
        max(ax_times) < 1.3 * min(ax_times))
    return claims


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.experiments.scaling --4d`` — the 4D sweep."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments.scaling",
        description="Scaling experiments (Fig. 9 / Fig. 11 / 4D sweep)")
    parser.add_argument("--4d", dest="four_d", action="store_true",
                        help="sweep 4D decompositions per cluster size")
    parser.add_argument("--model", default="12B",
                        choices=sorted(WEAK_SCALING_MODELS))
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[8, 16, 32, 64],
                        help="cluster sizes (GPU counts) to sweep")
    parser.add_argument("--microbatch", type=int, default=4)
    parser.add_argument("--memopt", action="store_true",
                        help="sweep with the CPU-offload optimizer instead "
                             "of resident state")
    args = parser.parse_args(argv)
    if not args.four_d:
        parser.error("nothing to do: pass --4d")
    rows = sweep_4d(cluster_sizes=args.sizes, model=args.model,
                    microbatch=args.microbatch, memopt=args.memopt)
    best = best_4d_decompositions(rows)
    cols = ("gpus", "g_intra", "g_inter", "g_data", "batch_time_s",
            "memory_gb", "feasible")
    print(f"{args.model}: best 4D decomposition per cluster size "
          f"({len(rows)} decompositions simulated)")
    print("  ".join(f"{c:>12}" for c in cols))
    for row in best:
        cells = []
        for c in cols:
            v = row[c]
            cells.append(f"{v:>12.3f}" if isinstance(v, float)
                         else f"{str(v):>12}")
        print("  ".join(cells))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
