"""Experiments: Table I (model zoo) and Table II (hyperparameter tuning).

Table I is analytic: the parameter-count formula must reproduce the
12/24/50/100 B configurations.  Table II runs the tuner of
:mod:`repro.tuning` per framework per scale and compares the selected
hyperparameters with the paper's."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import WEAK_SCALING_MODELS, paper_table1_specs
from ..tuning import tune_axonn, tune_baseline
from .scaling import MODEL_GPUS, PAPER_TABLE2, table2_row

__all__ = ["table1_rows", "table1_claims", "table2_rows", "table2_claims"]


def table1_rows() -> List[Dict[str, object]]:
    return paper_table1_specs()


def table1_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    targets = {48: 12, 96: 24, 192: 50, 384: 100}
    return {
        f"{r['gpus']}gpus_params_match": abs(
            r["params_billions"] - targets[r["gpus"]])
        / targets[r["gpus"]] < 0.05
        for r in rows
    }


def table2_rows(models: Sequence[str] = ("12B",),
                batch_size: int = 16384,
                refine_top: int = 0) -> List[Dict[str, object]]:
    """Run the tuner; one row per (model, framework) with paper values
    attached for comparison.  ``refine_top=0`` keeps the sweep analytic
    (fast); pass e.g. 3 to DES-refine the leaders."""
    rows: List[Dict[str, object]] = []
    for model in models:
        spec = WEAK_SCALING_MODELS[model]
        gpus = MODEL_GPUS[model]
        for framework in ("axonn", "deepspeed", "megatron"):
            if framework == "axonn":
                result = tune_axonn(spec, gpus, batch_size,
                                    refine_top=refine_top)
            else:
                result = tune_baseline(spec, gpus, batch_size, framework,
                                       refine_top=refine_top)
            paper = table2_row(model, framework)
            row = result.as_row()
            row.update({
                "model": model,
                "gpus": gpus,
                "paper_mbs": paper.microbatch,
                "paper_g_intra": paper.g_intra,
                "paper_g_inter": paper.g_inter,
                "paper_g_data": paper.g_data,
            })
            rows.append(row)
    return rows


def table2_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    """The paper's Table II qualitative observations."""
    claims: Dict[str, bool] = {}
    models = sorted({r["model"] for r in rows})
    for model in models:
        by = {r["framework"]: r for r in rows if r["model"] == model}
        ax, ds, mg = by["axonn"], by["deepspeed"], by["megatron"]
        # "AxoNN uses four to eight times the number of GPUs for data
        # parallelism as compared to Megatron-LM."
        claims[f"{model}_axonn_gdata_dominates_megatron"] = (
            ax["g_data"] >= 2 * mg["g_data"])
        claims[f"{model}_axonn_fastest_tuned"] = (
            ax["batch_time_s"] <= ds["batch_time_s"]
            and ax["batch_time_s"] <= mg["batch_time_s"])
        claims[f"{model}_axonn_gdata_at_least_deepspeed_half"] = (
            ax["g_data"] >= ds["g_data"] // 2)
    return claims
