"""Experiment: serving load sweep — throughput, tail latency, failover.

The serving twin of the training scaling studies: a V100-calibrated
replicated-pipeline deployment (:class:`~repro.serve.ServingModel`, costs
derived from the Summit GPU spec) is driven by a seeded Poisson request
stream at increasing fractions of the analytic token roofline.  The table
shows the three signatures every serving system exhibits:

* delivered throughput tracks offered load, then saturates near the
  roofline (the bottleneck stage is busy every pass);
* p99 TTFT is flat while the admission queue is empty and diverges once
  offered load crosses the saturation knee;
* the bounded queue rejects (backpressure) only past the knee.

Two companion checks close the loop: a closed-loop run whose measured
concurrency/throughput/sojourn obey Little's law ``L = X * W``, and a
seeded replica-crash plan whose outstanding requests all finish on the
surviving replica (failover re-admission).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..nn import GPTConfig
from ..resilience import Fault, FaultPlan
from ..serve import (ArrivalSpec, RequestSpec, ServingModel,
                     simulate_closed_loop, simulate_serving,
                     sweep_offered_load)

__all__ = ["serving_model", "serving_rows", "serving_closed_loop",
           "serving_failover", "serving_claims", "serving_report",
           "SERVED_MODEL_CFG"]

#: The deployment the experiment models: a GPT-2.7B-class decoder served
#: on one Summit node per replica (pipeline depth 4).
SERVED_MODEL_CFG = GPTConfig(vocab_size=51200, seq_len=2048, n_layer=32,
                             n_head=32, hidden=2560)

#: Offered load as fractions of the analytic token roofline.
_LOAD_FRACTIONS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)

_SERVE_SEQ_LEN = 256  #: admission clip for synthetic request sizes


def serving_model(n_replicas: int = 2, g_inter: int = 4,
                  max_batch: int = 8) -> ServingModel:
    """The swept deployment, costs derived from the V100 spec."""
    return ServingModel.from_cluster(SERVED_MODEL_CFG,
                                     n_replicas=n_replicas,
                                     g_inter=g_inter, max_batch=max_batch)


def _request_spec(seed: int) -> RequestSpec:
    return RequestSpec(mean_prompt=32, mean_new_tokens=16, seed=seed)


def serving_rows(fast: bool = False, *, seed: int = 0,
                 loads: Optional[Sequence[float]] = None
                 ) -> List[Dict[str, float]]:
    """The load-sweep table (one row per offered-load fraction)."""
    model = serving_model()
    horizon = 20.0 if fast else 60.0
    return sweep_offered_load(
        model, list(loads or _LOAD_FRACTIONS), horizon_s=horizon,
        request_spec=_request_spec(seed), seq_len=_SERVE_SEQ_LEN, seed=seed)


def serving_closed_loop(fast: bool = False, *,
                        seed: int = 0) -> Dict[str, float]:
    """Closed-loop Little's-law check: L vs X*W."""
    model = serving_model()
    n_clients = 3 * model.n_replicas * model.effective_max_active
    stats = simulate_closed_loop(model, n_clients=n_clients,
                                 horizon_s=20.0 if fast else 60.0,
                                 request_spec=_request_spec(seed),
                                 seq_len=_SERVE_SEQ_LEN)
    L = stats.mean_concurrency
    XW = stats.throughput_req_s * stats.mean_sojourn_s
    return {
        "n_clients": float(n_clients),
        "mean_concurrency_L": L,
        "throughput_X_req_s": stats.throughput_req_s,
        "mean_sojourn_W_s": stats.mean_sojourn_s,
        "X_times_W": XW,
        "littles_law_rel_err": abs(L - XW) / L if L else 1.0,
    }


def serving_failover(fast: bool = False, *,
                     seed: int = 0) -> Dict[str, float]:
    """Seeded replica crash mid-run; all admitted requests must finish."""
    model = serving_model()
    spec = _request_spec(seed)
    horizon = 20.0 if fast else 60.0
    roofline = model.token_roofline_tok_s(spec.mean_prompt,
                                          spec.mean_new_tokens)
    # 60% of roofline keeps both replicas busy so the crash at mid-run
    # orphans live requests (queued + KV-resident + in the pipeline).
    rate = 0.6 * roofline / spec.mean_new_tokens
    plan = FaultPlan.of(Fault(kind="crash", rank=0,
                              tick=int(horizon // 2)))
    stats = simulate_serving(model, ArrivalSpec(rate_per_s=rate, seed=seed),
                             horizon, request_spec=spec,
                             seq_len=_SERVE_SEQ_LEN, plan=plan)
    return {
        "crash_replica": 0.0,
        "crash_at_s": float(int(horizon // 2)),
        "arrived": float(stats.n_arrived),
        "admitted": float(stats.n_admitted),
        "completed": float(stats.n_completed),
        "restarted": float(stats.n_restarts),
        "rejected": float(stats.n_rejected),
        "rejected_backpressure": float(stats.n_rejected_backpressure),
        "rejected_down": float(stats.n_rejected_down),
        "lost": float(stats.n_admitted - stats.n_completed),
    }


def serving_claims(rows: List[Dict[str, float]],
                   closed: Optional[Dict[str, float]] = None,
                   failover: Optional[Dict[str, float]] = None
                   ) -> Dict[str, bool]:
    """The acceptance checklist over the sweep (+ optional companions)."""
    roofline = rows[0]["roofline_tok_s"]
    peak = max(r["throughput_tok_s"] for r in rows)
    claims = {
        "throughput saturates near the analytic roofline (>= 70%)":
            0.70 * roofline <= peak <= 1.02 * roofline,
        "throughput flat past saturation (last row within 5% of peak)":
            rows[-1]["throughput_tok_s"] >= 0.95 * peak,
        "p99 TTFT diverges past saturation (>= 5x the light-load p99)":
            rows[-1]["ttft_p99_ms"] >= 5.0 * rows[0]["ttft_p99_ms"],
        "backpressure engages only past the knee (no light-load rejects)":
            rows[0]["rejected"] == 0 and rows[-1]["rejected"] > 0,
    }
    if closed is not None:
        claims["closed-loop concurrency obeys Little's law within 5%"] = \
            closed["littles_law_rel_err"] < 0.05
    if failover is not None:
        claims["replica crash orphans live requests (failover exercised)"] \
            = failover["restarted"] > 0
        claims["every admitted request eventually served after failover"] \
            = failover["lost"] == 0
    return claims


def serving_report(fast: bool = False, *, seed: int = 0) -> Dict[str, object]:
    """Everything the CLI/tests need in one call."""
    rows = serving_rows(fast, seed=seed)
    closed = serving_closed_loop(fast, seed=seed)
    failover = serving_failover(fast, seed=seed)
    return {
        "rows": rows,
        "closed_loop": closed,
        "failover": failover,
        "claims": serving_claims(rows, closed, failover),
    }
