"""Experiment: Fig. 6 — batch-time breakdown with/without the memory
optimization, plus the Section V-B memory accounting.

Paper setting: 12 B model, 48 GPUs, batch 2048, microbatch 1.  Without the
optimization the best feasible configuration is (G_inter=24, G_data=2);
with it, (G_inter=6, G_data=8).  The optimization trades a larger
data-parallel all-reduce for a much cheaper inter-layer phase."""

from __future__ import annotations

from typing import Dict, List

from ..core import AxoNNConfig, MemoryModel, WEAK_SCALING_MODELS, \
    simulate_batch

__all__ = ["fig6_rows", "fig6_claims", "memory_savings_summary"]


def fig6_rows(num_gpus: int = 48, batch_size: int = 2048,
              model: str = "12B") -> List[Dict[str, object]]:
    spec = WEAK_SCALING_MODELS[model]
    without = AxoNNConfig(
        spec=spec, num_gpus=num_gpus, g_inter=24, g_data=num_gpus // 24,
        microbatch_size=1, batch_size=batch_size, memopt=False)
    with_ = AxoNNConfig(
        spec=spec, num_gpus=num_gpus, g_inter=6, g_data=num_gpus // 6,
        microbatch_size=1, batch_size=batch_size, memopt=True,
        bucket_size=16_000_000)
    rows = []
    for label, cfg in (("without-memopt", without), ("with-memopt", with_)):
        r = simulate_batch(cfg)
        rows.append({
            "variant": label,
            "g_inter": cfg.g_inter,
            "g_data": cfg.g_data,
            "pipeline_s": r.pipeline_s,
            "allreduce_s": r.allreduce_s,
            "optimizer_s": r.optimizer_s,
            "total_s": r.batch_time_s,
        })
    return rows


def fig6_claims(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    by = {r["variant"]: r for r in rows}
    wo, w = by["without-memopt"], by["with-memopt"]
    improvement = (wo["total_s"] - w["total_s"]) / wo["total_s"]
    return {
        "pipeline_phase_shrinks": w["pipeline_s"] < wo["pipeline_s"],
        "allreduce_phase_grows": w["allreduce_s"] > wo["allreduce_s"],
        "total_improves": w["total_s"] < wo["total_s"],
        # paper: "an improvement of 13 percent"
        "improvement_in_plausible_band": 0.05 < improvement < 0.40,
    }


def memory_savings_summary(model: str = "12B") -> Dict[str, float]:
    """Section V-B numbers: 20 phi -> 4 phi + 16 bsize; 520 GB -> 130 GB."""
    spec = WEAK_SCALING_MODELS[model]
    mm = MemoryModel(spec)
    gb = 1024 ** 3
    phi = spec.params_per_stage(24)
    return {
        "state_bytes_per_gpu_baseline_gb":
            mm.state_bytes_baseline(phi) / gb,
        "state_bytes_per_gpu_memopt_gb":
            mm.state_bytes_memopt(phi, 16_000_000) / gb,
        "state_saving_ratio":
            mm.state_bytes_baseline(phi)
            / mm.state_bytes_memopt(phi, 16_000_000),
        "cluster_total_without_gb":
            mm.cluster_total_bytes(24, 2, 1, memopt=False) / gb,
        "cluster_total_with_gb":
            mm.cluster_total_bytes(24, 2, 1, memopt=True,
                                   bucket_size=16_000_000) / gb,
    }
