"""Fig. 1-style pipeline occupancy diagram.

The paper's Fig. 1 illustrates inter-layer parallelism as a GPU-by-time
grid of forward (green) and backward (yellow) boxes.  This experiment
regenerates that picture from an actual traced simulation: each pipeline
stage becomes a row, each time bin shows ``f``/``b`` for the pass running
there (``.`` = idle), and per-stage idle fractions quantify the warm-up /
drain bubble the figure illustrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster import GridPlacement, Machine, summit
from ..core import AxoNNConfig, WEAK_SCALING_MODELS
from ..core.phases import run_pipeline_phase

__all__ = ["pipeline_occupancy", "render_occupancy"]


def pipeline_occupancy(g_inter: int = 4, microbatches: int = 8,
                       model: str = "12B",
                       pipeline_limit: Optional[int] = None
                       ) -> Dict[str, object]:
    """Trace one small pipeline pass and compute per-stage occupancy."""
    spec = WEAK_SCALING_MODELS[model]
    num_gpus = g_inter  # one pipeline row only
    cfg = AxoNNConfig(
        spec=spec, num_gpus=num_gpus, g_inter=g_inter, g_data=1,
        microbatch_size=1, batch_size=microbatches,
        include_optimizer=False, memopt=False,
        pipeline_limit=pipeline_limit)
    machine = Machine(spec=summit(max(1, -(-num_gpus // 6))), trace=True)
    placement = GridPlacement(machine.spec, g_inter, 1)
    machine.env.process(run_pipeline_phase(machine, cfg, placement),
                        name="pipeline-diagram")
    machine.run()
    total = machine.now

    stages = []
    for i in range(g_inter):
        gpu_id = placement.pipeline(0)[i]
        spans = [s for s in machine.tracer.spans
                 if s.track == f"gpu{gpu_id}.compute"]
        busy = sum(s.duration for s in spans)
        stages.append({
            "stage": i,
            "spans": spans,
            "busy_s": busy,
            "idle_fraction": 1.0 - busy / total if total > 0 else 0.0,
        })
    return {"stages": stages, "total_s": total, "g_inter": g_inter,
            "microbatches": microbatches}


def render_occupancy(occupancy: Dict[str, object], width: int = 96) -> str:
    """ASCII rendering: one row per stage, ``f``/``b`` per time bin."""
    total = occupancy["total_s"]
    lines = [f"pipeline occupancy over {total:.3f}s "
             f"({occupancy['microbatches']} microbatches, "
             f"G_inter={occupancy['g_inter']}; f=forward, b=backward)"]
    for st in occupancy["stages"]:
        row = ["."] * width
        for span in st["spans"]:
            b0 = min(width - 1, int(span.start / total * width))
            b1 = min(width - 1, max(b0, int(span.end / total * width) - 1))
            ch = "f" if span.name.startswith("fwd") else "b"
            for k in range(b0, b1 + 1):
                row[k] = ch
        lines.append(f"  GPU{st['stage']} |{''.join(row)}| "
                     f"idle {st['idle_fraction'] * 100:4.1f}%")
    return "\n".join(lines)
