"""repro.resilience: deterministic fault injection, detection, recovery.

One seeded :class:`FaultPlan` drives both substrates:

* the **functional runtime** — :class:`FaultInjector` plugged into
  :class:`~repro.runtime.RankTransport` crashes ranks and drops/delays
  messages for real; :class:`ResilientTrainer` detects the failure via
  heartbeat timeout and rolls the 2D grid back to an in-memory snapshot,
  bit-identically;
* the **performance substrate** — :func:`simulate_resilient_run` models
  checkpoint-write cost, Poisson failures and rework on the DES, and the
  MTBF x interval sweep compares the empirical optimum against Young/Daly
  (:func:`young_daly_interval_s`).

See DESIGN.md section 8 and ``python -m repro faults``.
"""

from .faults import (DELIVER, DROP, Fault, FaultInjector, FaultPlan,
                     RetryPolicy)
from .recovery import RecoveryEvent, ResilientTrainer
from .sim import (FailureModel, RunStats, fit_optimal_interval,
                  simulate_resilient_run, sweep_intervals,
                  young_daly_interval_s, young_daly_interval_steps)

__all__ = [
    "Fault", "FaultPlan", "FaultInjector", "RetryPolicy", "DELIVER", "DROP",
    "RecoveryEvent", "ResilientTrainer",
    "FailureModel", "RunStats", "simulate_resilient_run", "sweep_intervals",
    "fit_optimal_interval", "young_daly_interval_s",
    "young_daly_interval_steps",
]
