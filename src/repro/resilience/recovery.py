"""Checkpoint-based recovery for the functional runtime.

:class:`ResilientTrainer` wraps an :class:`~repro.runtime.AxoNNTrainer`
and makes it survivable under an injected :class:`~repro.resilience.FaultPlan`:

1. before every ``snapshot_interval``-th batch it captures an in-memory
   snapshot of the *complete* training state — parameters, optimizer
   moments, loss scale **and its good-step counter**, and every dropout
   RNG bit-generator state (:func:`repro.runtime.trainer_state_dict`);
2. each batch runs on a fault-injecting
   :class:`~repro.runtime.RankTransport` whose heartbeat detector turns a
   crashed rank into a :class:`~repro.runtime.RankFailure`;
3. on detection, the coordinator pauses the grid, **respawns** the dead
   ranks (fresh :class:`~repro.runtime.PipelineStage` + optimizer),
   restores all ranks from the latest snapshot, silently replays any
   batches trained since that snapshot, and re-attempts the failed batch.

Because the snapshot is bit-complete, the post-recovery loss trajectory is
**bit-identical** to an uninterrupted run from the same seed — the paper's
Fig. 10 serial-vs-parallel equivalence argument extended to rank crashes.
The tests pin this with exact float comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..runtime import (AxoNNTrainer, RankTransport, TrainReport,
                       load_trainer_state, trainer_state_dict)
from ..runtime.transport import RankFailure
from .faults import FaultInjector, FaultPlan, RetryPolicy

__all__ = ["RecoveryEvent", "ResilientTrainer"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One detected failure and the rollback that answered it."""

    step: int                    #: batch index the failure interrupted
    dead: Tuple[int, ...]        #: ranks declared failed (groups expanded)
    detected_at: int             #: transport tick of the declaration
    restored_from: int           #: batch index of the snapshot restored
    replayed: int                #: batches silently replayed after restore
    attempt: int                 #: which retry of the batch this was
    #: tensor-parallel groups respawned whole because a member died
    tp_groups: Tuple[Tuple[int, ...], ...] = ()


class ResilientTrainer:
    """Fault-injecting, self-recovering wrapper around a trainer.

    ``snapshot_interval`` trades checkpoint cost for rework, exactly like
    the Young/Daly interval of the performance model: a snapshot is taken
    before batch ``k`` whenever ``k % snapshot_interval == 0``, and a
    failure at batch ``t`` rolls back to the latest snapshot and replays
    the ``t - s`` intermediate batches.
    """

    def __init__(self, trainer: AxoNNTrainer, plan: FaultPlan, *,
                 retry: Optional[RetryPolicy] = None,
                 snapshot_interval: int = 1,
                 detect_timeout: int = 25,
                 max_recoveries_per_batch: int = 8):
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        self.trainer = trainer
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.snapshot_interval = snapshot_interval
        self.detect_timeout = detect_timeout
        self.max_recoveries_per_batch = max_recoveries_per_batch
        #: batches successfully trained through this wrapper
        self.step = 0
        #: every rollback performed, in order
        self.recoveries: List[RecoveryEvent] = []
        #: fault identities already injected (shared across retries so a
        #: crash fires once, not on every attempt of the same batch)
        self._spent: set = set()
        self._snapshot_step: int = -1
        self._snapshot: Optional[Dict[str, np.ndarray]] = None
        #: (x, y) of batches trained since the snapshot, for replay
        self._replay: List[Tuple[np.ndarray, np.ndarray]] = []

    # -- snapshots ---------------------------------------------------------
    def _take_snapshot(self) -> None:
        tracer = self.trainer.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span(0, "fault", f"snapshot@{self.step}",
                             category="checkpoint", step=self.step):
                self._snapshot = trainer_state_dict(self.trainer)
        else:
            self._snapshot = trainer_state_dict(self.trainer)
        self._snapshot_step = self.step
        self._replay = []

    # -- the fault-injecting transport -------------------------------------
    def _factory(self, injector: FaultInjector) -> Callable[[], RankTransport]:
        trainer = self.trainer

        def make() -> RankTransport:
            return RankTransport(
                trainer.grid.world_size, recorder=trainer.recorder,
                tracer=trainer.tracer, injector=injector, retry=self.retry,
                detect_timeout=self.detect_timeout)

        return make

    # -- recovery protocol -------------------------------------------------
    def _expand_tp_failure(self, failure: RankFailure) -> RankFailure:
        """Map dead ranks to whole tensor-parallel groups.

        A TP follower holds shards the group lead re-materializes on
        respawn, so a dead follower cannot be rebuilt alone: without
        this expansion ``_build_rank`` no-ops on it and the batch dies
        with an opaque error.  With ``g_intra > 1`` every dead rank
        drags its full intra group into ``failure.dead``, and the new
        :class:`RankFailure` names the groups being respawned.  The
        expanded groups are recorded on the failure (``tp_groups``) for
        the :class:`RecoveryEvent`.
        """
        grid = self.trainer.grid
        if getattr(grid, "g_intra", 1) <= 1:
            failure.tp_groups = ()
            return failure
        groups: List[Tuple[int, ...]] = []
        for rank in failure.dead:
            i, j, _t = grid.coord3_of(rank)
            group = tuple(grid.tp_group(i, j))
            if group not in groups:
                groups.append(group)
        dead = sorted({r for g in groups for r in g})
        if dead == failure.dead:
            failure.tp_groups = tuple(groups)
            return failure
        named = ", ".join(f"stage {grid.coord3_of(g[0])[0]} group {g}"
                          for g in groups)
        expanded = RankFailure(
            f"rank(s) {failure.dead} died; respawning their "
            f"tensor-parallel group(s): {named}",
            dead=dead, detected_at=failure.detected_at,
            crashed_at=failure.crashed_at)
        expanded.tp_groups = tuple(groups)
        return expanded

    def _recover(self, failure: RankFailure, attempt: int) -> None:
        trainer = self.trainer
        tracer = trainer.tracer
        start = tracer.now() if tracer is not None and tracer.enabled else 0.0
        # 1. Pause: the failed transport already closed every rank program;
        #    void the partial batch (in-flight activations, partial losses).
        for stage in trainer.stages.values():
            stage._inflight.clear()
            stage.microbatch_losses.clear()
        # 2. Respawn the dead ranks with fresh stages and optimizers, and
        #    drop cached data-parallel buffers that alias the old tensors.
        for rank in failure.dead:
            trainer._build_rank(rank)
        trainer.invalidate_buffers()
        # 3. Restore every rank from the latest snapshot (parameters,
        #    optimizer moments, loss scale + counter, dropout RNG state).
        assert self._snapshot is not None
        load_trainer_state(trainer, self._snapshot)
        # 4. Replay the batches trained since the snapshot, fault-free.
        trainer.transport_factory = None
        if trainer.backend == "process":
            trainer.process_backend.injector = None
        for x, y in self._replay:
            trainer.train_batch(x, y)
        self.recoveries.append(RecoveryEvent(
            step=self.step, dead=tuple(failure.dead),
            detected_at=failure.detected_at,
            restored_from=self._snapshot_step,
            replayed=len(self._replay), attempt=attempt,
            tp_groups=getattr(failure, "tp_groups", ())))
        if tracer is not None and tracer.enabled:
            tracer.record(0, "fault", f"recovery@{self.step}", start,
                          tracer.now(), category="recovery",
                          step=self.step, dead=tuple(failure.dead),
                          restored_from=self._snapshot_step,
                          replayed=len(self._replay))

    # -- public API --------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> TrainReport:
        """One batch under the fault plan, recovering as needed.

        Returns the :class:`~repro.runtime.TrainReport` of the successful
        attempt; raises ``RuntimeError`` if the batch cannot complete
        within ``max_recoveries_per_batch`` rollbacks.
        """
        if self._snapshot is None or \
                self.step - self._snapshot_step >= self.snapshot_interval:
            self._take_snapshot()
        attempt = 0
        while True:
            injector = FaultInjector(self.plan, step=self.step,
                                     spent=self._spent)
            if self.trainer.backend == "process":
                # Crash faults become real SIGKILLs inside the worker
                # processes; the channel-fault kinds raise
                # NotImplementedError there (they model a lossy NIC the
                # shared-memory transport does not have).
                self.trainer.process_backend.injector = injector
            else:
                self.trainer.transport_factory = self._factory(injector)
            try:
                report = self.trainer.train_batch(x, y)
            except RankFailure as raw_failure:
                failure = self._expand_tp_failure(raw_failure)
                attempt += 1
                if attempt > self.max_recoveries_per_batch:
                    raise RuntimeError(
                        f"batch {self.step} failed {attempt} times; giving "
                        f"up (dead ranks {failure.dead})") from failure
                self._recover(failure, attempt)
                continue
            finally:
                self.trainer.transport_factory = None
                if self.trainer.backend == "process":
                    self.trainer.process_backend.injector = None
            self._replay.append((x, y))
            self.step += 1
            return report

    @property
    def total_recoveries(self) -> int:
        return len(self.recoveries)
