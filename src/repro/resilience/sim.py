"""Failure/checkpoint modeling on the discrete-event substrate.

The performance twin of :mod:`repro.resilience.recovery`: instead of
really crashing rank programs, it models the *throughput* consequences of
faults at paper scale — checkpoint-write cost, Poisson failure arrivals,
and rework-after-rollback — as a discrete-event simulation on
:class:`repro.sim.Environment`.

The training process advances in *segments* of ``interval_steps`` steps
followed by a checkpoint write; a failure process draws exponential
inter-arrival times (seeded, deterministic) and interrupts the trainer,
which loses all work since the last durable checkpoint, pays a restart
cost, and resumes.  Efficiency is useful compute time over total wall
time; the classic first-order optimum for the checkpoint interval is
Young/Daly's :math:`\\sqrt{2 C M}` (checkpoint cost *C*, MTBF *M*), which
the MTBF x interval experiment (:mod:`repro.experiments.resilience`)
compares against the simulated optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..obs import ObsSpan
from ..sim import Environment, Interrupt, poisson_process

__all__ = ["FailureModel", "RunStats", "young_daly_interval_s",
           "young_daly_interval_steps", "simulate_resilient_run",
           "sweep_intervals", "fit_optimal_interval"]


@dataclass(frozen=True)
class FailureModel:
    """Parameters of one resilient training run."""

    step_time_s: float        #: one training step (from the batch model)
    checkpoint_write_s: float  #: durable checkpoint write cost
    restart_s: float          #: node replacement + restore + respawn cost
    mtbf_s: float             #: system mean time between failures
    interval_steps: int       #: steps between checkpoints
    total_steps: int          #: useful steps the run must complete
    seed: int = 0             #: failure-arrival stream seed

    def __post_init__(self):
        if min(self.step_time_s, self.checkpoint_write_s,
               self.restart_s, self.mtbf_s) <= 0:
            raise ValueError("all durations must be positive")
        if self.interval_steps < 1 or self.total_steps < 1:
            raise ValueError("interval/total steps must be >= 1")


@dataclass(frozen=True)
class RunStats:
    """Outcome of one simulated run."""

    total_time_s: float
    useful_time_s: float
    n_failures: int
    n_checkpoints: int
    lost_work_s: float        #: compute thrown away by rollbacks
    checkpoint_time_s: float  #: time spent writing checkpoints
    restart_time_s: float     #: downtime paid to restarts

    @property
    def efficiency(self) -> float:
        return self.useful_time_s / self.total_time_s

    @property
    def overhead(self) -> float:
        """Fractional time lost to faults: total/useful - 1."""
        return self.total_time_s / self.useful_time_s - 1.0


def young_daly_interval_s(mtbf_s: float, checkpoint_write_s: float) -> float:
    """Young's first-order optimal checkpoint interval, in seconds."""
    return math.sqrt(2.0 * checkpoint_write_s * mtbf_s)


def young_daly_interval_steps(mtbf_s: float, checkpoint_write_s: float,
                              step_time_s: float) -> float:
    """The Young/Daly interval expressed in training steps."""
    return young_daly_interval_s(mtbf_s, checkpoint_write_s) / step_time_s


def _trainer_proc(env: Environment, p: FailureModel, st: Dict[str, float],
                  spans: Optional[List[ObsSpan]]):
    done = 0
    while done < p.total_steps:
        seg = min(p.interval_steps, p.total_steps - done)
        work = seg * p.step_time_s + p.checkpoint_write_s
        t0 = env.now
        try:
            yield env.timeout(work)
            done += seg
            st["n_checkpoints"] += 1
            st["checkpoint_time_s"] += p.checkpoint_write_s
            if spans is not None:
                spans.append(ObsSpan(0, "compute", f"steps->{done}", t0,
                                     env.now - p.checkpoint_write_s,
                                     category="compute"))
                spans.append(ObsSpan(0, "compute", f"ckpt@{done}",
                                     env.now - p.checkpoint_write_s,
                                     env.now, category="checkpoint"))
        except Interrupt:
            # All work since the last durable checkpoint is gone
            # (including a partially written checkpoint).
            st["lost_work_s"] += env.now - t0
            if spans is not None:
                spans.append(ObsSpan(0, "compute", f"fault@{done}", t0,
                                     env.now, category="fault"))
            while True:
                r0 = env.now
                try:
                    yield env.timeout(p.restart_s)
                    st["restart_time_s"] += env.now - r0
                    break
                except Interrupt:
                    # A failure during recovery restarts the recovery.
                    st["restart_time_s"] += env.now - r0
            if spans is not None:
                spans.append(ObsSpan(0, "compute", f"restart@{done}", r0,
                                     env.now, category="recovery"))
    st["finish_s"] = env.now


def _failure_proc(env: Environment, p: FailureModel, trainer,
                  st: Dict[str, float]):
    def fail(_now: float) -> None:
        st["n_failures"] += 1
        trainer.interrupt("gpu-failure")

    # Same draw/check order as the historical inline loop, so existing
    # seeded results are bit-identical.
    yield from poisson_process(env, p.mtbf_s, p.seed, fail,
                               alive=lambda: trainer.is_alive)


def simulate_resilient_run(p: FailureModel,
                           spans: Optional[List[ObsSpan]] = None
                           ) -> RunStats:
    """Run the DES; returns the throughput accounting.

    Pass ``spans=[]`` to additionally collect an :class:`ObsSpan` timeline
    (segments, checkpoint writes, faults, restarts) for the trace CLI.
    """
    env = Environment()
    st: Dict[str, float] = {"n_failures": 0, "n_checkpoints": 0,
                            "lost_work_s": 0.0, "checkpoint_time_s": 0.0,
                            "restart_time_s": 0.0, "finish_s": 0.0}
    trainer = env.process(_trainer_proc(env, p, st, spans),
                          name="resilient-trainer")
    env.process(_failure_proc(env, p, trainer, st), name="failure-injector")
    env.run()
    return RunStats(
        total_time_s=st["finish_s"],
        useful_time_s=p.total_steps * p.step_time_s,
        n_failures=int(st["n_failures"]),
        n_checkpoints=int(st["n_checkpoints"]),
        lost_work_s=st["lost_work_s"],
        checkpoint_time_s=st["checkpoint_time_s"],
        restart_time_s=st["restart_time_s"],
    )


def sweep_intervals(base: FailureModel, intervals: List[int],
                    seeds: List[int]) -> List[Dict[str, float]]:
    """Mean efficiency/overhead per candidate interval, across seeds."""
    from dataclasses import replace
    rows = []
    for interval in intervals:
        stats = [simulate_resilient_run(
            replace(base, interval_steps=interval, seed=seed))
            for seed in seeds]
        rows.append({
            "interval_steps": interval,
            "interval_s": interval * base.step_time_s,
            "efficiency": float(np.mean([s.efficiency for s in stats])),
            "overhead": float(np.mean([s.overhead for s in stats])),
            "n_failures": float(np.mean([s.n_failures for s in stats])),
        })
    return rows


def fit_optimal_interval(rows: List[Dict[str, float]]) -> float:
    """Least-squares fit of the overhead model ``a/x + b*x + c`` over the
    swept interval lengths (seconds); returns ``x* = sqrt(a/b)``.

    The expected overhead of periodic checkpointing is ``C/x`` (write
    cost amortized per interval) plus ``~x/(2M)`` (expected rework per
    failure) plus a constant — so the fitted minimum is the simulation's
    empirical optimum, read off far more stably than an argmin over noisy
    point estimates.
    """
    if len(rows) < 3:
        raise ValueError("need at least 3 swept intervals to fit")
    x = np.array([r["interval_s"] for r in rows], dtype=float)
    y = np.array([r["overhead"] for r in rows], dtype=float)
    design = np.stack([1.0 / x, x, np.ones_like(x)], axis=1)
    (a, b, _c), *_ = np.linalg.lstsq(design, y, rcond=None)
    if a <= 0 or b <= 0:
        # Degenerate fit (e.g. no failures in the horizon): fall back to
        # the best measured point.
        return float(x[int(np.argmin(y))])
    return float(math.sqrt(a / b))
