"""Reverse-mode automatic differentiation on NumPy arrays.

This is the numerical substrate standing in for PyTorch: a :class:`Tensor`
wraps an ``ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order accumulating gradients into ``.grad``.

Design notes
------------
* Gradients are *accumulated* (``+=``) into ``.grad`` exactly like PyTorch —
  this is what microbatch gradient accumulation in the pipeline engine
  relies on.
* Broadcasting is fully supported; :func:`_unbroadcast` reduces an upstream
  gradient back to a parent's shape.
* :func:`no_grad` disables graph recording — used by inference paths and by
  activation checkpointing's first (throwaway) forward pass.
* ``backward`` may be called from any tensor with an explicit upstream
  gradient, which is how the pipeline engine injects the boundary gradient
  received from the next stage (Algorithm 2, line 22).

Hot-path contracts
------------------
* :meth:`Tensor._make` bypasses ``__init__`` entirely; with grad disabled
  (or no grad-requiring parent) it returns a bare constant node without
  touching the closure.
* Backward closures accumulate through two entry points:
  :meth:`Tensor._accumulate` *copies* (the incoming array may be a view of
  someone else's buffer), while :meth:`Tensor._accumulate_owned` takes
  ownership of a **freshly allocated** array (or a view of one) and stores
  it without the defensive copy.  Only pass an array to the owned variant
  when the closure itself just allocated it — never the upstream gradient
  ``g`` or a view of a parent's data.

  This contract is enforced twice: statically by lint rule **REP001**
  (``python -m repro.analysis lint``) and dynamically by the opt-in
  autograd sanitizer (:func:`repro.analysis.sanitize`), which checks every
  ``_accumulate_owned`` call with ``np.may_share_memory`` against the
  in-flight upstream gradient and the destination buffer.  See DESIGN.md,
  "The analysis layer".

Instrumentation
---------------
The sanitizer hooks below compile down to a single attribute test
(``_san.enabled``) when disabled, mirroring :mod:`repro.perf.counters` —
the benchmarks assert this costs <5% step time.  Code that mutates
``Tensor.data`` in place should call :meth:`Tensor.bump_version` so the
sanitizer's mutation-after-save detection is exact (a content fingerprint
catches unannotated mutations on a best-effort basis).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.sanitizer import sanitizer as _san
from ..perf.counters import counters as _counters

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(idx) -> bool:
    """True when ``idx`` performs NumPy *basic* indexing (ints, slices,
    Ellipsis, newaxis) — which never selects an element twice, so the
    backward scatter needs no ``np.add.at``."""
    if isinstance(idx, tuple):
        return all(_is_basic_index(i) for i in idx)
    return (idx is None or idx is Ellipsis
            or isinstance(idx, (int, np.integer, slice)))


Arrayish = Union["Tensor", np.ndarray, float, int]


def as_tensor(x: Arrayish, dtype=np.float32) -> "Tensor":
    """Coerce to a (non-grad) Tensor if needed."""
    if isinstance(x, Tensor):
        return x
    return Tensor(np.asarray(x, dtype=dtype))


class Tensor:
    """An ndarray plus an optional autograd tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward",
                 "name", "_version", "__weakref__")

    def __init__(self, data: np.ndarray, requires_grad: bool = False,
                 parents: Sequence["Tensor"] = (),
                 backward: Optional[Callable[[np.ndarray], None]] = None,
                 name: str = ""):
        if not isinstance(data, np.ndarray):
            data = np.asarray(data, dtype=np.float32)
        self.data = data
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents: Tuple["Tensor", ...] = tuple(parents)
        self._backward = backward
        self.name = name

    # -- constructors ------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False,
              dtype=np.float32) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False,
             dtype=np.float32) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()  # lint-ok: REP003 explicit opt-in API
        return Tensor((rng.standard_normal(shape) * scale).astype(np.float32),
                      requires_grad=requires_grad)

    # -- basic info ---------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The raw array (shared, not copied)."""
        return self.data

    # -- sanitizer support --------------------------------------------------
    # The version slot is lazily materialized: tensors never mutated in
    # place (the overwhelming majority) pay nothing for it.
    @property
    def version(self) -> int:
        """In-place mutation counter (see the autograd sanitizer)."""
        try:
            return self._version
        except AttributeError:
            return 0

    def bump_version(self) -> None:
        """Declare an in-place mutation of ``.data``.

        Call after mutating the buffer so the sanitizer's
        mutation-after-save check is exact rather than fingerprint-based.
        """
        self._version = self.version + 1

    def detach(self) -> "Tensor":
        """A view of the same data cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover
        flag = ", grad" if self.requires_grad else ""
        return f"<Tensor {self.shape} {self.data.dtype}{flag}>"

    # -- graph construction -------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output node (or a constant if grad is off).

        ``data`` must already be an ndarray; ``__init__`` is bypassed so
        constant nodes cost only slot assignment.
        """
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.name = ""
        if _GRAD_ENABLED[-1]:
            req = [p for p in parents if p.requires_grad]
            if req:
                out.requires_grad = True
                out._parents = tuple(req)
                out._backward = backward
                if _counters.enabled:
                    _counters.bump("graph_nodes")
                if _san.enabled:
                    _san.on_node_created(out, parents, backward)
                return out
        out.requires_grad = False
        out._parents = ()
        out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``.grad``, defensively copying on first use
        (``grad`` may alias a buffer the caller still owns)."""
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Add a **freshly allocated** ``grad`` into ``.grad`` without the
        defensive copy.  The caller transfers ownership: it must not read
        or write ``grad`` (or its base) after this call."""
        if _san.enabled:
            _san.check_owned(self, grad)
        if self.grad is None:
            if grad.dtype == self.data.dtype and grad.flags.writeable:
                self.grad = grad
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    # -- backward -----------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Accumulate gradients of this tensor w.r.t. every graph leaf.

        ``grad`` defaults to 1 for scalars; non-scalar roots require an
        explicit upstream gradient (the pipeline boundary case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without a gradient is only valid for scalars"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"upstream gradient shape {grad.shape} does not match tensor "
                f"shape {self.data.shape}"
            )

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        # Seed and propagate in reverse topological order.  Gradients flow
        # through .grad of intermediate nodes; leaves keep theirs, interior
        # nodes have theirs cleared to bound memory.
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            if _san.enabled:
                _san.before_backward_node(node)
                try:
                    node._backward(node.grad)
                finally:
                    _san.after_backward_node(node)
            else:
                node._backward(node.grad)
            if node._parents:  # interior node: release its gradient buffer
                node.grad = None

    def zero_grad(self) -> None:
        self.grad = None

    # ======================================================================
    # operators
    # ======================================================================
    def __add__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(g: np.ndarray, a=self, b=other) -> None:
            # _unbroadcast may return g itself — never owned.
            if a.requires_grad:
                a._accumulate(_unbroadcast(g, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(g, b.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray, a=self) -> None:
            a._accumulate_owned(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Arrayish) -> "Tensor":
        return self + (-as_tensor(other, self.data.dtype))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other, self.data.dtype) + (-self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(g: np.ndarray, a=self, b=other) -> None:
            if a.requires_grad:
                a._accumulate_owned(_unbroadcast(g * b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate_owned(_unbroadcast(g * a.data, b.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(g: np.ndarray, a=self, b=other) -> None:
            if a.requires_grad:
                a._accumulate_owned(_unbroadcast(g / b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate_owned(
                    _unbroadcast(-g * a.data / (b.data * b.data),
                                 b.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        # np.power with a scalar exponent takes a slow per-element path
        # (~100x a multiply on float32); expand the common small integer
        # powers into multiplications.
        d = self.data
        if exponent == 2:
            out_data = d * d
        elif exponent == 3:
            out_data = d * d * d
        else:
            out_data = d ** exponent

        def backward(g: np.ndarray, a=self, e=exponent) -> None:
            d = a.data
            if e == 2:
                a._accumulate_owned(g * (2.0 * d))
            elif e == 3:
                a._accumulate_owned(g * (3.0 * (d * d)))
            else:
                a._accumulate_owned(g * e * d ** (e - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other, self.data.dtype)
        out_data = self.data @ other.data

        def backward(g: np.ndarray, a=self, b=other) -> None:
            if a.requires_grad:
                ga = g @ np.swapaxes(b.data, -1, -2)
                a._accumulate_owned(_unbroadcast(ga, a.data.shape))
            if b.requires_grad:
                gb = np.swapaxes(a.data, -1, -2) @ g
                b._accumulate_owned(_unbroadcast(gb, b.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        if _is_basic_index(idx):
            # Basic indexing never aliases two output elements to one input
            # element, so the backward scatter is a plain (fast) assignment.
            def backward(g: np.ndarray, a=self, idx=idx) -> None:
                full = np.zeros_like(a.data)
                full[idx] = g
                a._accumulate_owned(full)
        else:
            def backward(g: np.ndarray, a=self, idx=idx) -> None:
                full = np.zeros_like(a.data)
                np.add.at(full, idx, g)
                a._accumulate_owned(full)

        return Tensor._make(out_data, (self,), backward)

    # -- shape ops -----------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)
        orig = self.data.shape

        def backward(g: np.ndarray, a=self, orig=orig) -> None:
            a._accumulate(g.reshape(orig))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = np.transpose(self.data, axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward(g: np.ndarray, a=self, inverse=inverse) -> None:
            a._accumulate(np.transpose(g, inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = np.swapaxes(self.data, a, b)

        def backward(g: np.ndarray, t=self, a=a, b=b) -> None:
            t._accumulate(np.swapaxes(g, a, b))

        return Tensor._make(out_data, (self,), backward)

    # -- reductions -----------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        # np.sum over all axes yields a NumPy scalar; keep it an ndarray so
        # the dtype survives Tensor construction.
        out_data = np.asarray(self.data.sum(axis=axis, keepdims=keepdims))

        def backward(g: np.ndarray, a=self, axis=axis,
                     keepdims=keepdims) -> None:
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            if g.shape == a.data.shape:  # size-1 reduction: nothing to do
                a._accumulate(g)
            else:
                grad = np.ascontiguousarray(
                    np.broadcast_to(g, a.data.shape))
                a._accumulate_owned(grad)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean as a single autograd node (not ``sum * 1/n``)."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        inv = np.asarray(1.0 / count, dtype=self.data.dtype)
        out_data = np.asarray(
            self.data.sum(axis=axis, keepdims=keepdims)) * inv

        def backward(g: np.ndarray, a=self, axis=axis,
                     keepdims=keepdims, inv=inv) -> None:
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            # One scaled-broadcast fill; no intermediate sum-gradient array.
            grad = np.empty_like(a.data)
            np.multiply(g, inv, out=grad)
            a._accumulate_owned(grad)

        return Tensor._make(out_data, (self,), backward)

    # -- elementwise nonlinearities --------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray, a=self, out=out_data) -> None:
            a._accumulate_owned(g * out)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray, a=self) -> None:
            a._accumulate_owned(g / a.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray, a=self, out=out_data) -> None:
            a._accumulate_owned(g * 0.5 / out)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray, a=self, out=out_data) -> None:
            a._accumulate_owned(g * (1.0 - out * out))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0)

        def backward(g: np.ndarray, a=self) -> None:
            a._accumulate_owned(g * (a.data > 0))

        return Tensor._make(out_data, (self,), backward)
