"""Gradient clipping by global norm.

Standard practice in large-transformer training (Megatron-LM and DeepSpeed
both clip at 1.0).  The global norm spans *all* parameters, which in the
pipeline-parallel setting requires combining per-stage partial norms — the
helper :func:`combine_partial_norms` gives the reduction each data-parallel
framework performs.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["global_grad_norm", "clip_grad_norm_", "partial_sq_norm",
           "combine_partial_norms"]


def partial_sq_norm(params: Iterable[Tensor]) -> float:
    """Sum of squared gradient entries over these parameters (fp64 for a
    stable reduction)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            g = p.grad.astype(np.float64, copy=False)
            total += float((g * g).sum())
    return total


def combine_partial_norms(partials: Sequence[float]) -> float:
    """Global norm from per-shard squared-norm partials."""
    if any(s < 0 for s in partials):
        raise ValueError("squared norms cannot be negative")
    return math.sqrt(sum(partials))


def global_grad_norm(params: Iterable[Tensor]) -> float:
    """L2 norm of the concatenated gradient vector."""
    return combine_partial_norms([partial_sq_norm(params)])


def clip_grad_norm_(params: Iterable[Tensor], max_norm: float,
                    eps: float = 1e-6) -> float:
    """Scale gradients in place so the global norm is at most ``max_norm``.

    Returns the pre-clip norm (PyTorch convention).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + eps)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
