"""Module system: parameter containers in the PyTorch style.

A :class:`Module` owns named :class:`Parameter` leaves and child modules and
provides recursive traversal (``parameters()``, ``named_parameters()``,
``zero_grad()``, train/eval mode).  The layer zoo covers what a GPT needs:
:class:`Linear`, :class:`LayerNorm`, :class:`Embedding`, :class:`Dropout`,
:class:`Sequential`.

Initialization follows GPT-2: normal(0, 0.02) for weights, zeros for biases,
with the residual-projection scaling applied by the transformer module.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "LayerNorm", "Embedding",
           "Dropout", "Sequential"]


class Parameter(Tensor):
    """A leaf tensor registered as trainable."""

    __slots__ = ()

    def __init__(self, data: np.ndarray, name: str = ""):
        super().__init__(np.asarray(data), requires_grad=True, name=name)


class Module:
    """Base class: attribute assignment registers parameters and children."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    # -- traversal ----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # -- state ---------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of all parameter arrays, by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data[...] = state[name]

    # -- call ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map ``y = x W^T + b`` with PyTorch (out, in) weight layout."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None,
                 init_std: float = 0.02):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            (rng.standard_normal((out_features, in_features)) * init_std)
            .astype(np.float32)
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class LayerNorm(Module):
    """LayerNorm over the trailing dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    """Token-id -> vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None,
                 init_std: float = 0.02):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            (rng.standard_normal((num_embeddings, dim)) * init_std)
            .astype(np.float32)
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return F.embedding(self.weight, ids)


class Dropout(Module):
    """Dropout with a module-owned seeded RNG (reseed for reproducibility)."""

    def __init__(self, p: float, seed: int = 0):
        super().__init__()
        self.p = p
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def reseed(self, seed: int) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
