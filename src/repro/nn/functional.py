"""Fused neural-network operations with hand-written backward passes.

Composites built from :class:`~repro.nn.tensor.Tensor` primitives would be
correct but slow and numerically fragile; the operations that dominate a
transformer get fused implementations here (matching what PyTorch kernels
do): numerically-stable softmax / log-softmax, LayerNorm, GELU (tanh
approximation, as used by GPT), fused cross-entropy, dropout with an
explicit RNG, and helpers for masking and concatenation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "layer_norm",
    "cross_entropy",
    "dropout",
    "embedding",
    "where_mask",
    "concat",
    "linear",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray, a=x, out=out_data, axis=axis) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = (g * out).sum(axis=axis, keepdims=True)
        a._accumulate(out * (g - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z

    def backward(g: np.ndarray, a=x, out=out_data, axis=axis) -> None:
        softmax_x = np.exp(out)
        a._accumulate(g - softmax_x * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


_GELU_C = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (GPT-2's activation)."""
    xd = x.data
    inner = _GELU_C * (xd + 0.044715 * xd ** 3)
    t = np.tanh(inner)
    out_data = 0.5 * xd * (1.0 + t)

    def backward(g: np.ndarray, a=x, t=t, xd=xd) -> None:
        dinner = _GELU_C * (1.0 + 3 * 0.044715 * xd ** 2)
        grad = 0.5 * (1.0 + t) + 0.5 * xd * (1.0 - t * t) * dinner
        a._accumulate(g * grad)

    return Tensor._make(out_data, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """LayerNorm over the last dimension with affine parameters."""
    xd = x.data
    mu = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mu) * inv_std
    out_data = x_hat * weight.data + bias.data

    def backward(g: np.ndarray, a=x, w=weight, b=bias,
                 x_hat=x_hat, inv_std=inv_std) -> None:
        if w.requires_grad:
            axes = tuple(range(g.ndim - 1))
            w._accumulate((g * x_hat).sum(axis=axes))
        if b.requires_grad:
            axes = tuple(range(g.ndim - 1))
            b._accumulate(g.sum(axis=axes))
        if a.requires_grad:
            n = x_hat.shape[-1]
            gw = g * w.data
            term1 = gw
            term2 = gw.mean(axis=-1, keepdims=True)
            term3 = x_hat * (gw * x_hat).mean(axis=-1, keepdims=True)
            a._accumulate(inv_std * (term1 - term2 - term3))

    return Tensor._make(out_data, (x, weight, bias), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None) -> Tensor:
    """Mean token-level cross entropy.

    ``logits``: (..., V); ``targets``: integer array matching the leading
    shape.  Fused log-softmax + NLL, averaged over non-ignored positions.
    """
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits.shape[:-1]}"
        )
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones_like(flat_targets, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        raise ValueError("cross_entropy over zero valid targets")

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    safe_targets = np.where(mask, flat_targets, 0)
    picked = log_probs[np.arange(flat_targets.size), safe_targets]
    loss = -(picked * mask).sum() / count
    out_data = np.asarray(loss, dtype=logits.dtype)

    def backward(g: np.ndarray, a=logits, log_probs=log_probs,
                 safe_targets=safe_targets, mask=mask, count=count) -> None:
        probs = np.exp(log_probs)
        probs[np.arange(safe_targets.size), safe_targets] -= 1.0
        probs *= (mask / count)[:, None]
        a._accumulate(float(g) * probs.reshape(a.data.shape))

    return Tensor._make(out_data, (logits,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: scales survivors by ``1/(1-p)`` so inference needs
    no rescaling.  The caller supplies the RNG for determinism."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask

    def backward(g: np.ndarray, a=x, mask=mask) -> None:
        a._accumulate(g * mask)

    return Tensor._make(out_data, (x,), backward)


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup ``weight[ids]`` with scatter-add backward."""
    ids = np.asarray(ids)
    if not np.issubdtype(ids.dtype, np.integer):
        raise TypeError("embedding indices must be integers")
    out_data = weight.data[ids]

    def backward(g: np.ndarray, w=weight, ids=ids) -> None:
        full = np.zeros_like(w.data)
        np.add.at(full, ids, g)
        w._accumulate(full)

    return Tensor._make(out_data, (weight,), backward)


def where_mask(x: Tensor, mask: np.ndarray, fill: float) -> Tensor:
    """Replace positions where ``mask`` is True with ``fill`` (no gradient
    flows through filled positions) — the causal-attention mask op."""
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, np.asarray(fill, dtype=x.dtype), x.data)

    def backward(g: np.ndarray, a=x, mask=mask) -> None:
        a._accumulate(np.where(mask, 0.0, g))

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis`` with slice-wise backward."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]

    def backward(g: np.ndarray, parts=tensors, sizes=sizes, axis=axis) -> None:
        offset = 0
        for t, size in zip(parts, sizes):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(offset, offset + size)
                t._accumulate(g[tuple(sl)])
            offset += size

    return Tensor._make(out_data, tensors, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T + bias`` (PyTorch layout: weight is (out, in))."""
    out = x @ weight.swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out
