"""Fused neural-network operations with hand-written backward passes.

Composites built from :class:`~repro.nn.tensor.Tensor` primitives would be
correct but slow and numerically fragile; the operations that dominate a
transformer get fused implementations here (matching what PyTorch kernels
do): numerically-stable softmax / log-softmax, LayerNorm, GELU (tanh
approximation, as used by GPT), fused cross-entropy, a single-node
``linear``, the attention-core ``masked_softmax`` (scale + causal mask +
softmax in one node), dropout with an explicit RNG, and helpers for
masking and concatenation.

Each fused op records **one** autograd node where the primitive
composition would record many; the ``*_unfused`` reference implementations
at the bottom of this module are those compositions, kept for gradient
checking (``tests/test_nn_fused.py``) and for the fused-vs-unfused rows of
``benchmarks/bench_wallclock.py``.

Backward closures allocate fresh gradient arrays and hand them to
``Tensor._accumulate_owned`` (ownership transfer, no defensive copy) —
see the hot-path contract in :mod:`repro.nn.tensor`.  That contract is
checked statically by lint rule **REP001** (``python -m repro.analysis
lint``) and dynamically by the opt-in autograd sanitizer
(:func:`repro.analysis.sanitize`); never pass the upstream gradient ``g``
or a view of a parent's ``.data`` to the owned variant.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..perf.counters import counters as _counters
from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "layer_norm",
    "cross_entropy",
    "masked_softmax",
    "dropout",
    "embedding",
    "where_mask",
    "concat",
    "linear",
    "softmax_unfused",
    "log_softmax_unfused",
    "gelu_unfused",
    "layer_norm_unfused",
    "cross_entropy_unfused",
    "linear_unfused",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    if _counters.enabled:
        _counters.bump("softmax")
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted, out=shifted)  # shifted is fresh: reuse in place
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray, a=x, out=out_data, axis=axis) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = (g * out).sum(axis=axis, keepdims=True)
        a._accumulate_owned(out * (g - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    if _counters.enabled:
        _counters.bump("log_softmax")
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z

    def backward(g: np.ndarray, a=x, out=out_data, axis=axis) -> None:
        softmax_x = np.exp(out)
        softmax_x *= g.sum(axis=axis, keepdims=True)
        a._accumulate_owned(g - softmax_x)

    return Tensor._make(out_data, (x,), backward)


_GELU_C = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (GPT-2's activation).

    The cubic is expanded into multiplications: NumPy's ``x ** 3`` takes a
    scalar-power path roughly two orders of magnitude slower than two
    multiplies, and this op sits on the hottest path of every MLP block.
    """
    if _counters.enabled:
        _counters.bump("gelu")
    xd = x.data
    x_sq = xd * xd
    inner = _GELU_C * (xd + 0.044715 * (x_sq * xd))
    t = np.tanh(inner, out=inner)  # inner is fresh: reuse in place
    out_data = 0.5 * xd * (1.0 + t)

    def backward(g: np.ndarray, a=x, t=t, xd=xd, x_sq=x_sq) -> None:
        dinner = _GELU_C * (1.0 + (3 * 0.044715) * x_sq)
        grad = 0.5 * (1.0 + t) + 0.5 * xd * (1.0 - t * t) * dinner
        grad *= g
        a._accumulate_owned(grad)

    return Tensor._make(out_data, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """LayerNorm over the last dimension with affine parameters — one node
    computing mean/variance/normalization with a closed-form backward."""
    if _counters.enabled:
        _counters.bump("layer_norm")
    xd = x.data
    mu = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mu) * inv_std
    out_data = x_hat * weight.data + bias.data

    def backward(g: np.ndarray, a=x, w=weight, b=bias,
                 x_hat=x_hat, inv_std=inv_std) -> None:
        if w.requires_grad:
            axes = tuple(range(g.ndim - 1))
            w._accumulate_owned((g * x_hat).sum(axis=axes))
        if b.requires_grad:
            axes = tuple(range(g.ndim - 1))
            b._accumulate_owned(g.sum(axis=axes))
        if a.requires_grad:
            gw = g * w.data
            term2 = gw.mean(axis=-1, keepdims=True)
            term3 = x_hat * (gw * x_hat).mean(axis=-1, keepdims=True)
            gw -= term2
            gw -= term3
            gw *= inv_std
            a._accumulate_owned(gw)

    return Tensor._make(out_data, (x, weight, bias), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None) -> Tensor:
    """Mean token-level cross entropy.

    ``logits``: (..., V); ``targets``: integer array matching the leading
    shape.  Fused log-softmax + NLL, averaged over non-ignored positions —
    one graph node, one backward.
    """
    if _counters.enabled:
        _counters.bump("cross_entropy")
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits.shape[:-1]}"
        )
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones_like(flat_targets, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        raise ValueError("cross_entropy over zero valid targets")

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    safe_targets = np.where(mask, flat_targets, 0)
    picked = log_probs[np.arange(flat_targets.size), safe_targets]
    loss = -(picked * mask).sum() / count
    out_data = np.asarray(loss, dtype=logits.dtype)

    def backward(g: np.ndarray, a=logits, log_probs=log_probs,
                 safe_targets=safe_targets, mask=mask, count=count) -> None:
        probs = np.exp(log_probs)
        probs[np.arange(safe_targets.size), safe_targets] -= 1.0
        probs *= (float(g) / count) * mask[:, None]
        a._accumulate_owned(probs.reshape(a.data.shape))

    return Tensor._make(out_data, (logits,), backward)


def masked_softmax(x: Tensor, mask: np.ndarray, scale: float = 1.0,
                   fill: float = -1e9) -> Tensor:
    """Fused attention core: ``softmax(where(mask, fill, x * scale))``.

    Replaces the three-node scale -> :func:`where_mask` -> :func:`softmax`
    chain of the attention layer with one node.  Masked positions receive
    ``fill`` (large negative), so their softmax weight underflows to
    exactly 0 and — since the backward is ``scale * s * (g - sum(g*s))`` —
    no gradient flows through them, matching the unfused chain bit for bit.
    """
    if _counters.enabled:
        _counters.bump("masked_softmax")
    mask = np.asarray(mask, dtype=bool)
    xd = x.data
    # Clamp the fill to the dtype's finite range (fp16 cannot hold -1e9).
    fill = max(fill, float(np.finfo(xd.dtype).min))
    fill_v = np.asarray(fill, dtype=xd.dtype)
    if scale != 1.0:
        scores = xd * np.asarray(scale, dtype=xd.dtype)
        np.copyto(scores, fill_v, where=mask)  # scores is fresh
    else:
        scores = np.where(mask, fill_v, xd)
    scores -= scores.max(axis=-1, keepdims=True)
    e = np.exp(scores, out=scores)
    out_data = e / e.sum(axis=-1, keepdims=True)

    def backward(g: np.ndarray, a=x, out=out_data, scale=scale) -> None:
        dot = (g * out).sum(axis=-1, keepdims=True)
        grad = out * (g - dot)
        if scale != 1.0:
            grad *= np.asarray(scale, dtype=grad.dtype)
        a._accumulate_owned(grad)

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: scales survivors by ``1/(1-p)`` so inference needs
    no rescaling.  The caller supplies the RNG for determinism."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask

    def backward(g: np.ndarray, a=x, mask=mask) -> None:
        a._accumulate_owned(g * mask)

    return Tensor._make(out_data, (x,), backward)


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup ``weight[ids]`` with scatter-add backward."""
    ids = np.asarray(ids)
    if not np.issubdtype(ids.dtype, np.integer):
        raise TypeError("embedding indices must be integers")
    out_data = weight.data[ids]

    def backward(g: np.ndarray, w=weight, ids=ids) -> None:
        full = np.zeros_like(w.data)
        np.add.at(full, ids, g)
        w._accumulate_owned(full)

    return Tensor._make(out_data, (weight,), backward)


def where_mask(x: Tensor, mask: np.ndarray, fill: float) -> Tensor:
    """Replace positions where ``mask`` is True with ``fill`` (no gradient
    flows through filled positions) — the causal-attention mask op."""
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, np.asarray(fill, dtype=x.dtype), x.data)

    def backward(g: np.ndarray, a=x, mask=mask) -> None:
        a._accumulate_owned(np.where(mask, 0.0, g))

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis`` with slice-wise backward."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]

    def backward(g: np.ndarray, parts=tensors, sizes=sizes, axis=axis) -> None:
        offset = 0
        for t, size in zip(parts, sizes):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(offset, offset + size)
                t._accumulate(g[tuple(sl)])
            offset += size

    return Tensor._make(out_data, tensors, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T + bias`` as a single autograd node.

    ``weight`` uses the PyTorch (out, in) layout; ``bias``, if given, must
    be one-dimensional of length ``out``.  Fusing matters twice over: the
    unfused ``x @ w.swapaxes(-1, -2) + b`` records three nodes, and — much
    worse — the generic matmul backward materializes a *per-batch-element*
    ``(b, in, out)`` weight-gradient stack before reducing it.  Here the
    weight gradient is one ``(out, N) @ (N, in)`` GEMM over the flattened
    leading dimensions.
    """
    if _counters.enabled:
        _counters.bump("linear")
    xd = x.data
    out_data = xd @ weight.data.T
    if bias is not None:
        out_data += bias.data
        parents: Sequence[Tensor] = (x, weight, bias)
    else:
        parents = (x, weight)

    def backward(g: np.ndarray, a=x, w=weight, b=bias) -> None:
        g2 = g.reshape(-1, g.shape[-1])
        if w.requires_grad:
            x2 = a.data.reshape(-1, a.data.shape[-1])
            w._accumulate_owned(g2.T @ x2)
        if b is not None and b.requires_grad:
            b._accumulate_owned(g2.sum(axis=0))
        if a.requires_grad:
            a._accumulate_owned(g @ w.data)

    return Tensor._make(out_data, parents, backward)


# ===========================================================================
# Unfused reference compositions
# ===========================================================================
# Each mirrors the fused op above using only Tensor primitives (one autograd
# node per elementwise step).  They exist so the fused kernels can be
# verified against an independent derivation of the same gradient, and so
# the benchmark harness can put a number on what fusion buys.

def softmax_unfused(x: Tensor, axis: int = -1) -> Tensor:
    """Primitive-op softmax (max treated as a constant shift)."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    e = (x - shift).exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax_unfused(x: Tensor, axis: int = -1) -> Tensor:
    """Primitive-op log-softmax."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gelu_unfused(x: Tensor) -> Tensor:
    """Primitive-op tanh-approximation GELU."""
    inner = (x + (x * x * x) * 0.044715) * _GELU_C
    return x * (inner.tanh() + 1.0) * 0.5


def layer_norm_unfused(x: Tensor, weight: Tensor, bias: Tensor,
                       eps: float = 1e-5) -> Tensor:
    """Primitive-op LayerNorm over the last dimension."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    x_hat = centered / (var + eps).sqrt()
    return x_hat * weight + bias


def cross_entropy_unfused(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Primitive-op mean cross entropy (no ignore_index support)."""
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits.shape[:-1]}"
        )
    v = logits.shape[-1]
    flat = logits.reshape(-1, v)
    lp = log_softmax_unfused(flat, axis=-1)
    picked = lp[np.arange(flat.shape[0]), targets.reshape(-1)]
    return -picked.mean()


def linear_unfused(x: Tensor, weight: Tensor,
                   bias: Optional[Tensor] = None) -> Tensor:
    """Primitive-op linear: swapaxes + matmul (+ broadcast add)."""
    out = x @ weight.swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out
