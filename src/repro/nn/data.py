"""Synthetic language-modeling dataset (wikitext-103 stand-in).

The paper validates convergence on wikitext-103 (~100 M words).  That
corpus is not available offline, and the validation experiment (Fig. 10)
tests *equivalence of serial and parallel training*, not absolute
perplexity — any fixed, learnable token stream exercises the identical code
path.  We substitute a seeded synthetic corpus with natural-language-like
statistics:

* unigram frequencies follow a Zipf law (like word frequencies in English);
* a first-order Markov layer adds learnable sequential structure, so the
  training loss visibly decreases (a memoryless stream would plateau at the
  unigram entropy, making loss curves uninformative).

Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["SyntheticCorpus", "LMBatches"]


class SyntheticCorpus:
    """Deterministic Zipf-Markov token stream."""

    def __init__(self, vocab_size: int, length: int, seed: int = 0,
                 zipf_exponent: float = 1.1, markov_weight: float = 0.7,
                 branching: int = 4):
        if vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        if length < 2:
            raise ValueError("length must be >= 2")
        if not 0.0 <= markov_weight <= 1.0:
            raise ValueError("markov_weight must be in [0, 1]")
        self.vocab_size = vocab_size
        self.length = length
        self.seed = seed
        rng = np.random.default_rng(seed)

        # Zipfian unigram distribution over the vocabulary.
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        unigram = ranks ** (-zipf_exponent)
        unigram /= unigram.sum()
        self.unigram = unigram

        # Sparse Markov successors: each token prefers `branching` successors.
        successors = rng.integers(0, vocab_size, size=(vocab_size, branching))
        self._successors = successors

        # Generate the stream: with probability markov_weight follow the
        # previous token's preferred successors, otherwise draw from the
        # unigram distribution.
        tokens = np.empty(length, dtype=np.int64)
        tokens[0] = rng.choice(vocab_size, p=unigram)
        follow = rng.random(length) < markov_weight
        unigram_draws = rng.choice(vocab_size, size=length, p=unigram)
        branch_draws = rng.integers(0, branching, size=length)
        for t in range(1, length):
            if follow[t]:
                tokens[t] = successors[tokens[t - 1], branch_draws[t]]
            else:
                tokens[t] = unigram_draws[t]
        self.tokens = tokens

    def __len__(self) -> int:
        return self.length


@dataclass(frozen=True)
class LMBatches:
    """Deterministic (inputs, targets) batch stream for causal LM training.

    Batch ``b`` consists of ``batch_size`` windows of ``seq_len + 1`` tokens
    sampled (with a per-batch seeded RNG) from the corpus; inputs are the
    first ``seq_len`` tokens, targets the last ``seq_len``.  Batch contents
    depend only on ``(corpus.seed, seed, batch_index)``, so the serial and
    parallel training runs of the Fig. 10 experiment consume *identical*
    data.
    """

    corpus: SyntheticCorpus
    batch_size: int
    seq_len: int
    seed: int = 0

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.seq_len + 1 > len(self.corpus):
            raise ValueError("sequence length exceeds corpus size")

    def batch(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``index``-th batch: (x, y), each (batch_size, seq_len)."""
        if index < 0:
            raise ValueError("batch index must be >= 0")
        rng = np.random.default_rng((self.corpus.seed, self.seed, index))
        starts = rng.integers(0, len(self.corpus) - self.seq_len - 1,
                              size=self.batch_size)
        offsets = np.arange(self.seq_len + 1)
        windows = self.corpus.tokens[starts[:, None] + offsets[None, :]]
        return windows[:, :-1], windows[:, 1:]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        index = 0
        while True:
            yield self.batch(index)
            index += 1
