"""Autoregressive generation from a trained GPT.

Causal language models are trained to predict the next token; this module
closes the loop with greedy / temperature / top-k sampling so examples can
demonstrate that a model trained by the parallel runtime actually learned
the corpus statistics (the Markov structure of the synthetic data shows up
directly in the samples).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import no_grad
from .transformer import GPT, KVCache

__all__ = ["generate", "sample_token", "sequence_log_prob"]


def sample_token(logits_row: np.ndarray, temperature: float = 1.0,
                 top_k: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None,
                 greedy: bool = False) -> int:
    """Draw the next token id from one vocab-sized logits row.

    All math runs in float64 from an explicit cast of the raw logits, so
    any producer of bit-identical logits draws bit-identical tokens from
    the same RNG stream.  Shared by :func:`generate` and the serving engine
    (`repro.serve`) — token-for-token equivalence between the two paths is
    by construction, not by accident.
    """
    last = np.asarray(logits_row).astype(np.float64)
    if greedy:
        return int(np.argmax(last))
    if rng is None:
        raise ValueError("sampling requires an explicit rng (or greedy=True)")
    last = last / temperature
    if top_k is not None and top_k < last.size:
        cutoff = np.partition(last, -top_k)[-top_k]
        last = np.where(last < cutoff, -np.inf, last)
    last -= last.max()
    probs = np.exp(last)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))


def generate(model: GPT, prompt: np.ndarray, max_new_tokens: int,
             temperature: float = 1.0, top_k: Optional[int] = None,
             rng: Optional[np.random.Generator] = None,
             greedy: bool = False, use_cache: bool = True) -> np.ndarray:
    """Continue ``prompt`` (1-D int array) by ``max_new_tokens`` tokens.

    ``greedy=True`` takes the argmax; otherwise samples from the softmax at
    the given ``temperature``, optionally truncated to the ``top_k`` most
    likely tokens.  The context is cropped to the model's ``seq_len``.

    With ``use_cache=True`` (the default) decode is incremental: the prompt
    is prefetched in one batched forward that fills per-layer KV caches and
    each subsequent step feeds only the newest token — O(n) attention per
    token instead of re-running the full O(n^2) forward.  Once the sequence
    outgrows ``seq_len`` the loop falls back to the sliding-window full
    recompute, matching the uncached path exactly.
    """
    prompt = np.asarray(prompt)
    if prompt.ndim != 1 or prompt.size == 0:
        raise ValueError("prompt must be a non-empty 1-D token array")
    if prompt.max() >= model.cfg.vocab_size or prompt.min() < 0:
        raise ValueError("prompt token outside vocabulary")
    if max_new_tokens < 0:
        raise ValueError("max_new_tokens must be >= 0")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if top_k is not None and top_k < 1:
        raise ValueError("top_k must be >= 1")
    rng = rng or np.random.default_rng(0)
    was_training = model.training
    model.eval()
    tokens = prompt.astype(np.int64).tolist()
    cache: Optional[KVCache] = None
    try:
        for _ in range(max_new_tokens):
            with no_grad():
                if use_cache and len(tokens) <= model.cfg.seq_len:
                    if cache is None:
                        cache = KVCache(model.cfg, batch_size=1)
                        context = np.asarray(tokens)[None, :]
                    else:
                        context = np.asarray(tokens[-1:])[None, :]
                    logits, _ = model(context, cache=cache)
                else:
                    context = np.asarray(tokens[-model.cfg.seq_len:])[None, :]
                    logits, _ = model(context)
            tokens.append(sample_token(logits.data[0, -1], temperature,
                                       top_k, rng, greedy))
    finally:
        model.train(was_training)
    return np.asarray(tokens, dtype=np.int64)


def sequence_log_prob(model: GPT, tokens: np.ndarray) -> float:
    """Mean per-token log probability the model assigns to ``tokens``
    (negated cross entropy) — the quantity behind perplexity."""
    tokens = np.asarray(tokens)
    if tokens.ndim != 1 or tokens.size < 2:
        raise ValueError("need a 1-D sequence of at least two tokens")
    if tokens.size > model.cfg.seq_len + 1:
        raise ValueError("sequence longer than the model context")
    from . import functional as F
    x = tokens[None, :-1]
    y = tokens[None, 1:]
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            logits, _ = model(x)
            loss = F.cross_entropy(logits, y)
    finally:
        model.train(was_training)
    return -loss.item()
