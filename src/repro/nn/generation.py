"""Autoregressive generation from a trained GPT.

Causal language models are trained to predict the next token; this module
closes the loop with greedy / temperature / top-k sampling so examples can
demonstrate that a model trained by the parallel runtime actually learned
the corpus statistics (the Markov structure of the synthetic data shows up
directly in the samples).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import no_grad
from .transformer import GPT

__all__ = ["generate", "sequence_log_prob"]


def generate(model: GPT, prompt: np.ndarray, max_new_tokens: int,
             temperature: float = 1.0, top_k: Optional[int] = None,
             rng: Optional[np.random.Generator] = None,
             greedy: bool = False) -> np.ndarray:
    """Continue ``prompt`` (1-D int array) by ``max_new_tokens`` tokens.

    ``greedy=True`` takes the argmax; otherwise samples from the softmax at
    the given ``temperature``, optionally truncated to the ``top_k`` most
    likely tokens.  The context is cropped to the model's ``seq_len``.
    """
    prompt = np.asarray(prompt)
    if prompt.ndim != 1 or prompt.size == 0:
        raise ValueError("prompt must be a non-empty 1-D token array")
    if prompt.max() >= model.cfg.vocab_size or prompt.min() < 0:
        raise ValueError("prompt token outside vocabulary")
    if max_new_tokens < 0:
        raise ValueError("max_new_tokens must be >= 0")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if top_k is not None and top_k < 1:
        raise ValueError("top_k must be >= 1")
    rng = rng or np.random.default_rng(0)
    was_training = model.training
    model.eval()
    tokens = prompt.astype(np.int64).tolist()
    try:
        for _ in range(max_new_tokens):
            context = np.asarray(tokens[-model.cfg.seq_len:])[None, :]
            with no_grad():
                logits, _ = model(context)
            last = logits.data[0, -1].astype(np.float64)
            if greedy:
                nxt = int(np.argmax(last))
            else:
                last = last / temperature
                if top_k is not None and top_k < last.size:
                    cutoff = np.partition(last, -top_k)[-top_k]
                    last = np.where(last < cutoff, -np.inf, last)
                last -= last.max()
                probs = np.exp(last)
                probs /= probs.sum()
                nxt = int(rng.choice(probs.size, p=probs))
            tokens.append(nxt)
    finally:
        model.train(was_training)
    return np.asarray(tokens, dtype=np.int64)


def sequence_log_prob(model: GPT, tokens: np.ndarray) -> float:
    """Mean per-token log probability the model assigns to ``tokens``
    (negated cross entropy) — the quantity behind perplexity."""
    tokens = np.asarray(tokens)
    if tokens.ndim != 1 or tokens.size < 2:
        raise ValueError("need a 1-D sequence of at least two tokens")
    if tokens.size > model.cfg.seq_len + 1:
        raise ValueError("sequence longer than the model context")
    from . import functional as F
    x = tokens[None, :-1]
    y = tokens[None, 1:]
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            logits, _ = model(x)
            loss = F.cross_entropy(logits, y)
    finally:
        model.train(was_training)
    return -loss.item()
