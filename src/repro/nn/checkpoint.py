"""Activation (gradient) checkpointing.

Implements Chen et al.'s sublinear-memory technique the way the paper uses
it (Section V-A): during the forward pass only the *inputs* of selected
segments are stored; inside a segment no graph is recorded.  During the
backward pass each segment re-runs its forward with grad enabled and then
backpropagates through the rebuilt subgraph.

:func:`optimal_checkpoint_interval` computes the paper's ``ac = sqrt(N)``
rule (Eq. 1): it returns the factor of ``layers_per_gpu`` closest to
``sqrt(N)``, which minimizes the per-GPU activation memory

    M_activation  ∝  G_inter * N / (G_inter * ac) + 1 + ac .
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from .modules import Module
from .tensor import Tensor, no_grad

__all__ = ["checkpoint", "CheckpointedStack", "factors",
           "optimal_checkpoint_interval", "activation_memory_factor"]


def checkpoint(fn: Callable[[Tensor], Tensor], x: Tensor) -> Tensor:
    """Run ``fn(x)`` without recording, recompute in backward.

    The returned tensor participates in the surrounding graph; when its
    gradient arrives, ``fn`` is re-executed with grad enabled on a detached
    copy of ``x`` to rebuild the segment's graph, the segment is
    backpropagated, and the input gradient is passed on.
    """
    x_detached = Tensor(x.data, requires_grad=True)
    with no_grad():
        out = fn(Tensor(x.data))

    def backward(g, fn=fn, x=x, x_detached=x_detached):
        inner_in = Tensor(x_detached.data, requires_grad=True)
        out2 = fn(inner_in)
        out2.backward(g)
        if x.requires_grad and inner_in.grad is not None:
            x._accumulate(inner_in.grad)

    return Tensor._make(out.data, (x,), backward)


class CheckpointedStack(Module):
    """A stack of layers applying checkpointing every ``interval`` layers.

    Layers ``[i*interval, (i+1)*interval)`` form segment *i*; only segment
    inputs are kept live during the forward pass.  ``interval=0`` disables
    checkpointing (plain sequential execution).
    """

    def __init__(self, layers: Sequence[Module], interval: int):
        super().__init__()
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.stack = list(layers)
        for i, layer in enumerate(self.stack):
            setattr(self, f"stacked{i}", layer)
        self.interval = interval

    def forward(self, x: Tensor) -> Tensor:
        if self.interval == 0:
            for layer in self.stack:
                x = layer(x)
            return x
        for seg_start in range(0, len(self.stack), self.interval):
            segment = self.stack[seg_start:seg_start + self.interval]

            def run_segment(t: Tensor, segment=segment) -> Tensor:
                for layer in segment:
                    t = layer(t)
                return t

            x = checkpoint(run_segment, x)
        return x


def factors(n: int) -> List[int]:
    """Sorted positive factors of ``n``."""
    if n < 1:
        raise ValueError(f"factors of non-positive {n}")
    out = set()
    for d in range(1, int(math.isqrt(n)) + 1):
        if n % d == 0:
            out.add(d)
            out.add(n // d)
    return sorted(out)


def optimal_checkpoint_interval(n_layers_total: int,
                                layers_per_gpu: int) -> int:
    """The paper's rule: the factor of ``layers_per_gpu`` closest to
    ``sqrt(N)`` (Section V-A), N being the total layer count."""
    if layers_per_gpu < 1 or n_layers_total < 1:
        raise ValueError("layer counts must be positive")
    target = math.sqrt(n_layers_total)
    return min(factors(layers_per_gpu), key=lambda f: (abs(f - target), f))


def activation_memory_factor(n_layers_total: int, g_inter: int,
                             ac: int) -> float:
    """The paper's Eq. (1) activation-memory proportionality:

        M ∝ G_inter * (N / (G_inter * ac)) + 1 + ac
    """
    if ac < 1:
        raise ValueError("ac must be >= 1")
    return g_inter * (n_layers_total / (g_inter * ac)) + 1 + ac
