"""Optimizers: SGD and Adam/AdamW (decoupled weight decay).

The paper trains with Adam (Section VI-C: lr 0.001, beta1 0.9, beta2 0.999,
decoupled weight decay 0.01).  The implementation exposes the optimizer
*state arrays* (exp_avg / exp_avg_sq and the fp32 master copy in the mixed-
precision wrapper) because the memory-optimization code paths (CPU offload,
bucketed updates, ZeRO-1 sharding) operate on those arrays directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "adam_step"]


class Optimizer:
    """Base: holds parameter references and per-parameter state dicts."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer over an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.state: List[Dict[str, np.ndarray]] = [{} for _ in self.params]
        self.steps = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (optionally momentum) SGD."""

    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum

    def step(self) -> None:
        self.steps += 1
        for p, st in zip(self.params, self.state):
            if p.grad is None:
                continue
            g = p.grad
            if self.momentum > 0.0:
                buf = st.get("momentum")
                if buf is None:
                    buf = st["momentum"] = np.zeros_like(p.data)
                buf *= self.momentum
                buf += g
                g = buf
            p.data -= self.lr * g


def adam_step(param: np.ndarray, grad: np.ndarray,
              exp_avg: np.ndarray, exp_avg_sq: np.ndarray, step: int,
              lr: float, beta1: float, beta2: float, eps: float,
              weight_decay: float = 0.0, decoupled: bool = True) -> None:
    """One in-place Adam(W) update on raw arrays.

    Factored out of the :class:`Adam` class because the offloaded, bucketed
    optimizer of the memory optimization (paper Section V-B) applies exactly
    this function to *chunks* of the flattened state, and ZeRO-1 applies it
    to each rank's shard.
    """
    if decoupled and weight_decay != 0.0:
        param *= 1.0 - lr * weight_decay
    elif weight_decay != 0.0:
        grad = grad + weight_decay * param
    exp_avg *= beta1
    exp_avg += (1.0 - beta1) * grad
    exp_avg_sq *= beta2
    exp_avg_sq += (1.0 - beta2) * grad * grad
    bias1 = 1.0 - beta1 ** step
    bias2 = 1.0 - beta2 ** step
    step_size = lr / bias1
    denom = np.sqrt(exp_avg_sq / bias2) + eps
    param -= step_size * exp_avg / denom


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015); L2-style weight decay if requested."""

    decoupled = False

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        self.steps += 1
        for p, st in zip(self.params, self.state):
            if p.grad is None:
                continue
            if "exp_avg" not in st:
                st["exp_avg"] = np.zeros_like(p.data)
                st["exp_avg_sq"] = np.zeros_like(p.data)
            adam_step(p.data, p.grad, st["exp_avg"], st["exp_avg_sq"],
                      self.steps, self.lr, self.beta1, self.beta2, self.eps,
                      self.weight_decay, decoupled=self.decoupled)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter) — the paper's
    optimizer configuration."""

    decoupled = True

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        super().__init__(params, lr=lr, betas=betas, eps=eps,
                         weight_decay=weight_decay)
