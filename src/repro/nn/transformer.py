"""GPT-style transformer for causal language modeling.

The architecture matches the paper's workload (Section VI-B): a GPT-2/GPT-3
family decoder parameterized by number of layers, hidden size and attention
heads, trained with causal cross-entropy.

Pipeline shardability
---------------------
AxoNN's inter-layer parallelism assigns each GPU a *contiguous subset of
layers* (Algorithm 1, line 2).  :meth:`GPT.layer_sequence` exposes the model
as an ordered list ``[GPTEmbedding, Block * n_layer, GPTHead]`` whose
elements each map ``Tensor -> Tensor``; :func:`build_layer` constructs any
single element *with the same weights the full model would have* (per-layer
RNG streams derived from the master seed), so each pipeline rank can
instantiate only its shard and still agree numerically with the serial
model — the property behind the Fig. 10 loss-curve equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from . import functional as F
from .modules import Dropout, Embedding, LayerNorm, Linear, Module
from .tensor import Tensor, is_grad_enabled

__all__ = ["GPTConfig", "CausalSelfAttention", "MLP", "Block",
           "GPTEmbedding", "GPTHead", "GPT", "build_layer", "num_layer_slots",
           "LayerKVCache", "KVCache", "kv_cache_bytes"]


@dataclass(frozen=True)
class GPTConfig:
    """Transformer hyperparameters (paper Table I fields + training extras)."""

    vocab_size: int
    seq_len: int
    n_layer: int
    n_head: int
    hidden: int
    dropout: float = 0.0
    init_seed: int = 1234

    def __post_init__(self):
        if self.hidden % self.n_head != 0:
            raise ValueError(
                f"hidden size {self.hidden} not divisible by "
                f"{self.n_head} heads"
            )
        for fld in ("vocab_size", "seq_len", "n_layer", "n_head", "hidden"):
            if getattr(self, fld) < 1:
                raise ValueError(f"{fld} must be >= 1")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_head

    def layer_rng(self, slot: int) -> np.random.Generator:
        """Deterministic per-layer-slot RNG stream."""
        return np.random.default_rng((self.init_seed, slot))


class LayerKVCache:
    """Preallocated key/value buffers for one attention layer.

    Incremental decode appends the newest positions' K/V rows and attends
    over the whole buffer, so generating token ``n`` costs O(n) attention
    work instead of re-running the full O(n^2) forward.  Buffers are sized
    once at ``cfg.seq_len`` capacity — no per-token allocation.
    """

    __slots__ = ("k", "v", "length")

    def __init__(self, cfg: GPTConfig, batch_size: int = 1):
        shape = (batch_size, cfg.n_head, cfg.seq_len, cfg.head_dim)
        self.k = np.empty(shape, dtype=np.float32)
        self.v = np.empty(shape, dtype=np.float32)
        self.length = 0

    @property
    def batch_size(self) -> int:
        return self.k.shape[0]

    @property
    def capacity(self) -> int:
        return self.k.shape[2]

    @property
    def nbytes(self) -> int:
        return self.k.nbytes + self.v.nbytes

    def extend(self, k_new: np.ndarray,
               v_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append ``t`` new positions; return views of all cached K/V."""
        b, _, t, _ = k_new.shape
        if b != self.batch_size:
            raise ValueError(
                f"cache built for batch {self.batch_size}, got {b}")
        end = self.length + t
        if end > self.capacity:
            raise ValueError(
                f"KV cache overflow: {end} > capacity {self.capacity}")
        self.k[:, :, self.length:end] = k_new
        self.v[:, :, self.length:end] = v_new
        self.length = end
        return self.k[:, :, :end], self.v[:, :, :end]


class KVCache:
    """Per-block :class:`LayerKVCache` set for a full :class:`GPT`."""

    def __init__(self, cfg: GPTConfig, batch_size: int = 1):
        self.cfg = cfg
        self.blocks = [LayerKVCache(cfg, batch_size)
                       for _ in range(cfg.n_layer)]

    @property
    def length(self) -> int:
        return self.blocks[0].length

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.blocks)


def kv_cache_bytes(cfg: GPTConfig, batch_size: int = 1) -> int:
    """Full-capacity KV footprint: ``2 * n_layer * seq_len * hidden * 4``
    bytes per sequence — the serving memory budget (DESIGN.md section 9)."""
    return 2 * cfg.n_layer * cfg.seq_len * cfg.hidden * 4 * batch_size


class CausalSelfAttention(Module):
    """Multi-head self-attention with a causal mask."""

    def __init__(self, cfg: GPTConfig, rng: np.random.Generator):
        super().__init__()
        self.cfg = cfg
        self.qkv = Linear(cfg.hidden, 3 * cfg.hidden, rng=rng)
        self.proj = Linear(cfg.hidden, cfg.hidden, rng=rng,
                           init_std=0.02 / np.sqrt(2 * cfg.n_layer))
        self.drop = Dropout(cfg.dropout, seed=int(rng.integers(2 ** 31)))
        # Upper-triangular True = masked (future positions).
        mask = np.triu(np.ones((cfg.seq_len, cfg.seq_len), dtype=bool), k=1)
        self._mask = mask

    def forward(self, x: Tensor,
                cache: Optional[LayerKVCache] = None) -> Tensor:
        b, t, h = x.shape
        nh, hd = self.cfg.n_head, self.cfg.head_dim
        qkv = self.qkv(x)  # (b, t, 3h)
        qkv = qkv.reshape(b, t, 3, nh, hd)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, b, nh, t, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]
        past = 0
        if cache is not None:
            if is_grad_enabled():
                raise RuntimeError(
                    "KV-cached attention is inference-only; wrap the call "
                    "in no_grad()")
            past = cache.length
            k_all, v_all = cache.extend(k.data, v.data)
            k, v = Tensor(k_all), Tensor(v_all)
        # Fused scale + causal mask + softmax: one node instead of three.
        # Query rows past..past+t of the causal mask attend over all
        # past+t cached keys, so the cached slice generalizes the
        # from-scratch [:t, :t] case (past == 0).
        att = F.masked_softmax(q @ k.swapaxes(-1, -2),
                               self._mask[past:past + t, :past + t],
                               scale=1.0 / np.sqrt(hd))  # (b, nh, t, past+t)
        att = self.drop(att)
        y = att @ v  # (b, nh, t, hd)
        y = y.transpose(0, 2, 1, 3).reshape(b, t, h)
        return self.drop(self.proj(y))


class MLP(Module):
    """Position-wise feed-forward: Linear(4h) -> GELU -> Linear(h)."""

    def __init__(self, cfg: GPTConfig, rng: np.random.Generator):
        super().__init__()
        self.fc = Linear(cfg.hidden, 4 * cfg.hidden, rng=rng)
        self.proj = Linear(4 * cfg.hidden, cfg.hidden, rng=rng,
                           init_std=0.02 / np.sqrt(2 * cfg.n_layer))
        self.drop = Dropout(cfg.dropout, seed=int(rng.integers(2 ** 31)))

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.proj(F.gelu(self.fc(x))))


class Block(Module):
    """Pre-norm transformer block with residual connections."""

    def __init__(self, cfg: GPTConfig, rng: np.random.Generator):
        super().__init__()
        self.ln1 = LayerNorm(cfg.hidden)
        self.attn = CausalSelfAttention(cfg, rng)
        self.ln2 = LayerNorm(cfg.hidden)
        self.mlp = MLP(cfg, rng)

    def forward(self, x: Tensor,
                cache: Optional[LayerKVCache] = None) -> Tensor:
        x = x + self.attn(self.ln1(x), cache=cache)
        x = x + self.mlp(self.ln2(x))
        return x


class GPTEmbedding(Module):
    """Token + learned positional embeddings (the pipeline's first layer).

    Accepts an integer id array of shape (b, t) and returns (b, t, h).
    """

    def __init__(self, cfg: GPTConfig, rng: np.random.Generator):
        super().__init__()
        self.cfg = cfg
        self.tok = Embedding(cfg.vocab_size, cfg.hidden, rng=rng)
        self.pos = Embedding(cfg.seq_len, cfg.hidden, rng=rng, init_std=0.01)
        self.drop = Dropout(cfg.dropout, seed=int(rng.integers(2 ** 31)))

    def forward(self, ids, pos_offset: int = 0) -> Tensor:
        if isinstance(ids, Tensor):
            ids = ids.data
        ids = np.asarray(ids)
        if ids.max() >= self.cfg.vocab_size:
            raise ValueError("token id outside vocabulary")
        b, t = ids.shape
        if pos_offset + t > self.cfg.seq_len:
            raise ValueError(
                f"positions {pos_offset}..{pos_offset + t} exceed "
                f"seq_len {self.cfg.seq_len}")
        positions = np.arange(pos_offset, pos_offset + t)
        return self.drop(self.tok(ids) + self.pos(positions))


class GPTHead(Module):
    """Final LayerNorm + LM head (the pipeline's last layer)."""

    def __init__(self, cfg: GPTConfig, rng: np.random.Generator):
        super().__init__()
        self.cfg = cfg
        self.ln_f = LayerNorm(cfg.hidden)
        self.lm_head = Linear(cfg.hidden, cfg.vocab_size, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.lm_head(self.ln_f(x))

    def loss(self, x: Tensor, targets: np.ndarray) -> Tensor:
        """Logits + mean causal cross entropy in one call."""
        return F.cross_entropy(self.forward(x), targets)


def num_layer_slots(cfg: GPTConfig) -> int:
    """Length of the shardable layer sequence: embedding + blocks + head."""
    return cfg.n_layer + 2


def build_layer(cfg: GPTConfig, slot: int) -> Module:
    """Construct layer ``slot`` of the sequence with its canonical weights.

    Slot 0 is the embedding, slots ``1..n_layer`` are transformer blocks,
    slot ``n_layer + 1`` is the head.  Weights depend only on
    ``(cfg.init_seed, slot)``, so any rank building any subset agrees with
    the serial model.
    """
    n = num_layer_slots(cfg)
    if not 0 <= slot < n:
        raise ValueError(f"layer slot {slot} outside [0, {n})")
    rng = cfg.layer_rng(slot)
    if slot == 0:
        return GPTEmbedding(cfg, rng)
    if slot == n - 1:
        return GPTHead(cfg, rng)
    return Block(cfg, rng)


class GPT(Module):
    """The full model (serial reference implementation)."""

    def __init__(self, cfg: GPTConfig):
        super().__init__()
        self.cfg = cfg
        self.embedding = GPTEmbedding(cfg, cfg.layer_rng(0))
        blocks = [Block(cfg, cfg.layer_rng(i + 1)) for i in range(cfg.n_layer)]
        self.blocks = blocks
        for i, blk in enumerate(blocks):
            setattr(self, f"block{i}", blk)
        self.head = GPTHead(cfg, cfg.layer_rng(cfg.n_layer + 1))

    def layer_sequence(self) -> List[Module]:
        """The pipeline-shardable view: ``[embedding, *blocks, head]``."""
        return [self.embedding, *self.blocks, self.head]

    def forward(self, ids: np.ndarray,
                targets: Optional[np.ndarray] = None,
                cache: Optional[KVCache] = None
                ) -> Tuple[Tensor, Optional[Tensor]]:
        if cache is not None and targets is not None:
            raise ValueError("KV-cached forward is inference-only; "
                             "targets are unsupported")
        offset = cache.length if cache is not None else 0
        x = self.embedding(ids, pos_offset=offset)
        for i, blk in enumerate(self.blocks):
            x = blk(x, cache=None if cache is None else cache.blocks[i])
        logits = self.head(x)
        loss = F.cross_entropy(logits, targets) if targets is not None else None
        return logits, loss
