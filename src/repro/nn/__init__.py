"""NumPy deep-learning framework (the PyTorch stand-in).

Public surface:

* :class:`Tensor`, :func:`no_grad` — reverse-mode autograd;
* :mod:`repro.nn.functional` (imported as ``F``) — fused NN ops;
* :class:`Module` & the layer zoo — parameter containers;
* :class:`GPT`, :class:`GPTConfig`, :func:`build_layer` — the transformer;
* :class:`Adam`, :class:`AdamW`, :class:`SGD` — optimizers;
* :class:`MixedPrecisionAdamW`, :class:`LossScaler` — fp16 training;
* :func:`checkpoint`, :class:`CheckpointedStack` — activation checkpointing;
* :class:`SyntheticCorpus`, :class:`LMBatches` — the dataset substitute.
"""

from . import functional
from .clip import (
    clip_grad_norm_,
    combine_partial_norms,
    global_grad_norm,
    partial_sq_norm,
)
from .generation import generate, sample_token, sequence_log_prob
from .schedule import (
    ConstantLR,
    LinearWarmupLR,
    StepDecayLR,
    WarmupCosineLR,
)
from .checkpoint import (
    CheckpointedStack,
    activation_memory_factor,
    checkpoint,
    factors,
    optimal_checkpoint_interval,
)
from .data import LMBatches, SyntheticCorpus
from .mixed_precision import (
    LossScaler,
    MixedPrecisionAdamW,
    cast_params_half,
    grads_have_overflow,
)
from .modules import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
)
from .optim import SGD, Adam, AdamW, Optimizer, adam_step
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .transformer import (
    GPT,
    Block,
    CausalSelfAttention,
    GPTConfig,
    GPTEmbedding,
    GPTHead,
    KVCache,
    LayerKVCache,
    MLP,
    build_layer,
    kv_cache_bytes,
    num_layer_slots,
)

F = functional

__all__ = [
    "clip_grad_norm_",
    "combine_partial_norms",
    "global_grad_norm",
    "partial_sq_norm",
    "generate",
    "sample_token",
    "sequence_log_prob",
    "ConstantLR",
    "LinearWarmupLR",
    "StepDecayLR",
    "WarmupCosineLR",
    "F",
    "functional",
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "Sequential",
    "GPT",
    "GPTConfig",
    "GPTEmbedding",
    "GPTHead",
    "Block",
    "CausalSelfAttention",
    "MLP",
    "build_layer",
    "num_layer_slots",
    "KVCache",
    "LayerKVCache",
    "kv_cache_bytes",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "adam_step",
    "MixedPrecisionAdamW",
    "LossScaler",
    "cast_params_half",
    "grads_have_overflow",
    "checkpoint",
    "CheckpointedStack",
    "factors",
    "optimal_checkpoint_interval",
    "activation_memory_factor",
    "SyntheticCorpus",
    "LMBatches",
]
