"""Learning-rate schedules.

Large-model training regimes (GPT-3's, which the paper's Eq. 2 normalizes
against) pair Adam with a linear warmup followed by cosine decay; the
constant schedule reproduces the paper's fixed lr=0.001 experiments.

Schedules are pure functions of the step count wrapped in small classes so
they can be attached to any optimizer via :meth:`apply`.
"""

from __future__ import annotations

import math
from typing import Protocol

__all__ = ["LRSchedule", "ConstantLR", "WarmupCosineLR", "LinearWarmupLR",
           "StepDecayLR"]


class LRSchedule(Protocol):
    """Anything mapping a 0-based step index to a learning rate."""

    def lr_at(self, step: int) -> float:  # pragma: no cover - protocol
        ...


class _Base:
    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, optimizer, step: int) -> float:
        """Set ``optimizer.lr`` for ``step``; returns the rate used."""
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr


class ConstantLR(_Base):
    """Fixed learning rate (the paper's configuration: 0.001)."""

    def __init__(self, lr: float = 1e-3):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def lr_at(self, step: int) -> float:
        self._check(step)
        return self.lr

    @staticmethod
    def _check(step: int) -> None:
        if step < 0:
            raise ValueError("step must be >= 0")


class LinearWarmupLR(_Base):
    """Linear ramp 0 -> peak over ``warmup_steps``, then constant."""

    def __init__(self, peak_lr: float, warmup_steps: int):
        if peak_lr <= 0 or warmup_steps < 1:
            raise ValueError("peak_lr must be positive, warmup_steps >= 1")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps

    def lr_at(self, step: int) -> float:
        ConstantLR._check(step)
        if step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        return self.peak_lr


class WarmupCosineLR(_Base):
    """Linear warmup then cosine decay to ``min_lr`` at ``total_steps``."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int,
                 min_lr: float = 0.0):
        if peak_lr <= 0 or warmup_steps < 0:
            raise ValueError("peak_lr must be positive, warmup_steps >= 0")
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        if not 0 <= min_lr <= peak_lr:
            raise ValueError("need 0 <= min_lr <= peak_lr")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        ConstantLR._check(step)
        if self.warmup_steps and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps)
                       / (self.total_steps - self.warmup_steps))
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.peak_lr - self.min_lr) * cosine


class StepDecayLR(_Base):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1):
        if base_lr <= 0 or step_size < 1 or not 0 < gamma <= 1:
            raise ValueError("invalid StepDecayLR parameters")
        self.base_lr = base_lr
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        ConstantLR._check(step)
        return self.base_lr * self.gamma ** (step // self.step_size)
