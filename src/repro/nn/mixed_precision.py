"""Mixed-precision training: fp16 compute copies + fp32 master weights.

Implements the scheme of Micikevicius et al. the paper relies on
(Section II-A "Mixed precision"):

* each parameter keeps a half-precision copy ``theta_16`` used by forward
  and backward;
* the loss is multiplied by a *scaling factor* before backward so fp16
  gradients do not underflow;
* the optimizer first converts the fp16 gradients to fp32, descales them,
  and applies the update to the fp32 master weights, which are then recast
  to fp16.

:class:`LossScaler` provides both static and dynamic (halve on overflow,
grow after a streak of good steps) scaling.  :class:`MixedPrecisionAdamW`
is the fused wrapper the runtime uses; its state layout (fp32 master +
fp16 params/grads) is exactly the ``20 phi`` byte accounting of paper
Section V-B, which the memory model in :mod:`repro.core.memory_model`
mirrors.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .optim import adam_step
from .tensor import Tensor

__all__ = ["LossScaler", "MixedPrecisionAdamW", "cast_params_half",
           "grads_have_overflow"]


class LossScaler:
    """Loss-scale management (static or dynamic)."""

    def __init__(self, init_scale: float = 2.0 ** 16, dynamic: bool = True,
                 growth_interval: int = 200, growth_factor: float = 2.0,
                 backoff_factor: float = 0.5, min_scale: float = 1.0):
        if init_scale <= 0:
            raise ValueError("loss scale must be positive")
        self.scale = float(init_scale)
        self.dynamic = dynamic
        self.growth_interval = growth_interval
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.min_scale = min_scale
        self._good_steps = 0

    @property
    def good_steps(self) -> int:
        """Overflow-free steps since the last scale transition — part of
        the training state: a checkpoint that drops it replays the next
        scale growth at the wrong step and forks the loss trajectory."""
        return self._good_steps

    @good_steps.setter
    def good_steps(self, value: int) -> None:
        self._good_steps = int(value)

    def scale_loss(self, loss: Tensor) -> Tensor:
        """Multiply the loss by the current scale (pre-backward)."""
        return loss * self.scale

    def update(self, found_overflow: bool) -> None:
        """Post-step bookkeeping: back off on overflow, grow on a streak."""
        if not self.dynamic:
            return
        if found_overflow:
            self.scale = max(self.min_scale, self.scale * self.backoff_factor)
            self._good_steps = 0
        else:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self.scale *= self.growth_factor
                self._good_steps = 0


def cast_params_half(params: Iterable[Tensor]) -> List[np.ndarray]:
    """fp16 copies of the given fp32 parameters."""
    return [p.data.astype(np.float16) for p in params]


def grads_have_overflow(grads: Iterable[np.ndarray]) -> bool:
    """True when any gradient contains inf/nan (skip-step condition)."""
    return any(not np.isfinite(g).all() for g in grads)


class MixedPrecisionAdamW:
    """AdamW over fp32 masters driven by (de)scaled fp16 gradients.

    Memory layout per parameter count ``phi`` (paper Section V-B):

    * fp32 master weights: ``4 phi`` bytes (here: the wrapped params),
    * fp32 gradients:      ``4 phi`` (transient descaled copy),
    * fp16 weights:        ``2 phi`` (:attr:`half_params`),
    * fp16 gradients:      ``2 phi`` (supplied by backward),
    * optimizer state:     ``8 phi`` (exp_avg + exp_avg_sq).
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01,
                 scaler: LossScaler | None = None):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer over an empty parameter list")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.scaler = scaler or LossScaler()
        self.exp_avg = [np.zeros_like(p.data) for p in self.params]
        self.exp_avg_sq = [np.zeros_like(p.data) for p in self.params]
        self.half_params = cast_params_half(self.params)
        self.steps = 0
        self.skipped_steps = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self, half_grads: List[np.ndarray]) -> bool:
        """Apply one update from fp16 gradients; returns True if applied
        (False = overflow detected, step skipped, scale reduced)."""
        if len(half_grads) != len(self.params):
            raise ValueError("gradient list does not match parameter list")
        if grads_have_overflow(half_grads):
            self.scaler.update(found_overflow=True)
            self.skipped_steps += 1
            return False
        self.steps += 1
        inv = 1.0 / self.scaler.scale
        for p, g16, m, v, h in zip(self.params, half_grads,
                                   self.exp_avg, self.exp_avg_sq,
                                   self.half_params):
            g32 = g16.astype(np.float32)  # convert ...
            g32 *= inv                    # ... then descale, in place
            adam_step(p.data, g32, m, v, self.steps, self.lr,
                      self.beta1, self.beta2, self.eps,
                      self.weight_decay, decoupled=True)
            # Refresh the fp16 copy without an intermediate allocation.
            np.copyto(h, p.data, casting="unsafe")
        self.scaler.update(found_overflow=False)
        return True
