"""Hyperparameter tuning: the search behind the paper's Table II.

Section VII-B: "we tune various hyperparameters for each framework on each
GPU count and use the best values".  This module enumerates the candidate
grid for each framework:

* **AxoNN**: ``G_inter`` over the divisors of the GPU count (bounded by the
  layer count), ``G_data = GPUs / G_inter``, microbatch size over powers of
  two — with the memory optimization on (Section V-B);
* **Megatron-LM / DeepSpeed**: additionally ``G_intra`` over divisors of
  the per-node GPU count (intra-layer parallelism does not scale across
  NVLink domains);

filters out configurations that exceed the 16 GB V100 DRAM (the same
feasibility constraint that shaped the paper's table), scores the rest with
the analytic batch-time estimate, and optionally refines the leaders with
the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..baselines import ThreeDConfig, check_baseline_memory
from ..baselines.frameworks import baseline_stage_costs, simulate_baseline_batch
from ..cluster import Machine, summit
from ..core import AxoNNConfig, TransformerSpec, check_memory, \
    estimate_batch_time, simulate_batch
from ..core.phases import optimizer_time_on_gpu

__all__ = ["divisors", "axonn_candidates", "baseline_candidates",
           "estimate_baseline_time", "tune_axonn", "tune_baseline",
           "TuningResult"]


def divisors(n: int) -> List[int]:
    """Sorted positive divisors of ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    out = [d for d in range(1, n + 1) if n % d == 0]
    return out


DEFAULT_MICROBATCH_SIZES = (1, 2, 4, 8)


def axonn_candidates(spec: TransformerSpec, num_gpus: int, batch_size: int,
                     microbatch_sizes: Sequence[int] = DEFAULT_MICROBATCH_SIZES,
                     memopt: bool = True) -> List[AxoNNConfig]:
    """All structurally valid AxoNN configurations."""
    out = []
    for g_inter in divisors(num_gpus):
        if g_inter > spec.n_layer:
            continue
        g_data = num_gpus // g_inter
        if batch_size % g_data != 0:
            continue
        shard = batch_size // g_data
        for mbs in microbatch_sizes:
            if shard % mbs != 0:
                continue
            out.append(AxoNNConfig(
                spec=spec, num_gpus=num_gpus, g_inter=g_inter,
                g_data=g_data, microbatch_size=mbs, batch_size=batch_size,
                memopt=memopt))
    return out


def baseline_candidates(spec: TransformerSpec, num_gpus: int,
                        batch_size: int, framework: str,
                        gpus_per_node: int = 6,
                        microbatch_sizes: Sequence[int] =
                        DEFAULT_MICROBATCH_SIZES) -> List[ThreeDConfig]:
    """All structurally valid 3D-parallel configurations."""
    out = []
    for g_intra in divisors(gpus_per_node) + [2 * gpus_per_node]:
        if num_gpus % g_intra != 0 or spec.hidden % g_intra != 0:
            continue
        rest = num_gpus // g_intra
        for g_inter in divisors(rest):
            if g_inter > spec.n_layer:
                continue
            g_data = rest // g_inter
            if batch_size % g_data != 0:
                continue
            shard = batch_size // g_data
            for mbs in microbatch_sizes:
                if shard % mbs != 0:
                    continue
                out.append(ThreeDConfig(
                    spec=spec, num_gpus=num_gpus, g_intra=g_intra,
                    g_inter=g_inter, g_data=g_data, microbatch_size=mbs,
                    batch_size=batch_size, framework=framework))
    return out


def estimate_baseline_time(cfg: ThreeDConfig,
                           machine: Optional[Machine] = None) -> float:
    """Closed-form batch-time estimate for a flushing 3D-parallel baseline.

    Pipeline: ``(m + S - 1)`` slots of the bottleneck stage (compute +
    intra-layer collectives + handling) plus the *blocking* NCCL p2p wire
    time on every message; then the data-parallel all-reduce and the
    (ZeRO-sharded, for DeepSpeed) optimizer.
    """
    if machine is None:
        nodes = max(1, -(-cfg.num_gpus // 6))
        machine = Machine(spec=summit(nodes))
    cal = machine.cal
    nccl = cal.nccl
    peak = machine.spec.node.gpu.peak_half_flops
    costs = baseline_stage_costs(cfg, machine)
    m = cfg.microbatches_per_shard

    def slot(c):
        compute = cal.compute.time(
            c.fwd_compute_flops + c.recompute_flops + c.bwd_compute_flops,
            peak, work=c.work_granularity)
        return (compute + c.fwd_collective_s + c.bwd_collective_s
                + 2 * (cal.kernel_launch_overhead
                       + cal.p2p_handling_overhead))

    bottleneck = max(slot(c) for c in costs)
    pipeline = (m + cfg.g_inter - 1) * bottleneck
    if cfg.g_inter > 1:
        # Blocking sends: every boundary message's wire time serializes.
        stride = cfg.g_intra
        intra = (stride < machine.spec.node.gpus_per_node)
        hop = nccl.p2p_time(costs[0].activation_bytes, intra)
        pipeline += 2 * m * hop

    phi = costs[0].params_sharded
    nic_sharing = min(cfg.g_inter * cfg.g_intra,
                      machine.spec.node.gpus_per_node)
    ar = 0.0
    if cfg.g_data > 1:
        ar = nic_sharing * nccl.allreduce_time(
            cfg.spec.gradient_bytes_half(phi), cfg.g_data,
            intra_node=False) + cal.coll_launch_overhead
    if cfg.framework == "deepspeed" and cfg.g_data > 1:
        opt = optimizer_time_on_gpu(machine, phi // cfg.g_data)
        opt += nic_sharing * nccl.allreduce_time(
            phi, cfg.g_data, intra_node=False) / 2 + cal.coll_launch_overhead
    else:
        opt = optimizer_time_on_gpu(machine, phi)
    return pipeline + ar + opt


@dataclass(frozen=True)
class TuningResult:
    """Best configuration found, with the scored field."""

    config: object  # AxoNNConfig | ThreeDConfig
    batch_time_s: float
    n_candidates: int
    n_feasible: int

    def as_row(self) -> dict:
        cfg = self.config
        row = {
            "framework": getattr(cfg, "framework", "axonn"),
            "mbs": cfg.microbatch_size,
            "g_intra": getattr(cfg, "g_intra", None),
            "g_inter": cfg.g_inter,
            "g_data": cfg.g_data,
            "batch_time_s": self.batch_time_s,
            "candidates": self.n_candidates,
            "feasible": self.n_feasible,
        }
        return row


def tune_axonn(spec: TransformerSpec, num_gpus: int, batch_size: int,
               refine_top: int = 3,
               microbatch_sizes: Sequence[int] = DEFAULT_MICROBATCH_SIZES
               ) -> TuningResult:
    """Best AxoNN configuration under memory feasibility."""
    candidates = axonn_candidates(spec, num_gpus, batch_size,
                                  microbatch_sizes)
    if not candidates:
        raise ValueError("no structurally valid AxoNN configuration")
    feasible = [c for c in candidates if check_memory(c)[1]]
    if not feasible:
        raise ValueError(
            f"no feasible AxoNN configuration for {spec.name} on "
            f"{num_gpus} GPUs — more GPUs needed"
        )
    machine = Machine(spec=summit(max(1, -(-num_gpus // 6))))
    scored = sorted(feasible, key=lambda c: estimate_batch_time(c, machine))
    if refine_top > 0:
        leaders = scored[:refine_top]
        refined = [(simulate_batch(c).batch_time_s, i)
                   for i, c in enumerate(leaders)]
        best_time, best_i = min(refined)
        best = leaders[best_i]
    else:
        best = scored[0]
        best_time = estimate_batch_time(best, machine)
    return TuningResult(best, best_time, len(candidates), len(feasible))


def tune_baseline(spec: TransformerSpec, num_gpus: int, batch_size: int,
                  framework: str, refine_top: int = 3,
                  microbatch_sizes: Sequence[int] = DEFAULT_MICROBATCH_SIZES
                  ) -> TuningResult:
    """Best Megatron-LM / DeepSpeed configuration under memory feasibility."""
    candidates = baseline_candidates(spec, num_gpus, batch_size, framework,
                                     microbatch_sizes=microbatch_sizes)
    if not candidates:
        raise ValueError("no structurally valid baseline configuration")
    feasible = [c for c in candidates if check_baseline_memory(c)[1]]
    if not feasible:
        raise ValueError(
            f"no feasible {framework} configuration for {spec.name} on "
            f"{num_gpus} GPUs"
        )
    machine = Machine(spec=summit(max(1, -(-num_gpus // 6))))
    scored = sorted(feasible,
                    key=lambda c: estimate_baseline_time(c, machine))
    if refine_top > 0:
        leaders = scored[:refine_top]
        refined = [(simulate_baseline_batch(c).batch_time_s, i)
                   for i, c in enumerate(leaders)]
        best_time, best_i = min(refined)
        best = leaders[best_i]
    else:
        best = scored[0]
        best_time = estimate_baseline_time(best, machine)
    return TuningResult(best, best_time, len(candidates), len(feasible))
