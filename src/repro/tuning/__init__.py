"""Hyperparameter tuning (the Table II search).

Public surface: :func:`tune_axonn`, :func:`tune_baseline`,
:func:`axonn_candidates`, :func:`baseline_candidates`,
:func:`estimate_baseline_time`, :class:`TuningResult`.
"""

from .search import (
    TuningResult,
    axonn_candidates,
    baseline_candidates,
    divisors,
    estimate_baseline_time,
    tune_axonn,
    tune_baseline,
)

__all__ = [
    "TuningResult",
    "axonn_candidates",
    "baseline_candidates",
    "divisors",
    "estimate_baseline_time",
    "tune_axonn",
    "tune_baseline",
]
