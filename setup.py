"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works on fully offline machines that lack the
``wheel`` package (pip falls back to ``setup.py develop`` when the PEP 517
editable build is unavailable).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
